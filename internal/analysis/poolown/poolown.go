// Package poolown implements the skipit-vet analyzer that checks the
// linepool ownership discipline (see the package comment of
// internal/linepool): a line buffer obtained from (*linepool.Pool).Get must,
// on every control-flow path, be either
//
//   - released exactly once with (*linepool.Pool).Put, or
//   - handed off — stored into a transaction structure, passed to another
//     component, sent in a message, or returned — transferring ownership
//     with it,
//
// and must never be touched again after its release or be parked in a
// package-level variable (which would outlive every transaction scope).
//
// The check is intra-procedural and path-sensitive: it walks the control
// flow graph from each Get with a small owned/released state machine, so a
// release missing from only one error branch is still caught, with the
// diagnostic naming the acquisition site. Aliasing (b2 := b) is treated as
// an ownership transfer; the alias becomes the owner and is not re-tracked.
package poolown

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"
	"skipit/internal/analysis/suppress"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolown",
	Doc: "check that linepool buffers are released exactly once on every path and never outlive their transaction\n\n" +
		"Path-sensitively tracks each (*linepool.Pool).Get result to a Put, a handoff, or a leak.",
	Requires: []*analysis.Analyzer{ctrlflow.Analyzer},
	Run:      run,
}

// poolPkgSuffix identifies the linepool package by import-path suffix, so
// fixture trees mirroring the layout under testdata/src/ also match.
const poolPkgSuffix = "internal/linepool"

func run(pass *analysis.Pass) (interface{}, error) {
	suppress.Apply(pass)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			g := cfgs.FuncDecl(fn)
			if g == nil {
				continue
			}
			checkFunc(pass, fn, g)
		}
	}
	return nil, nil
}

// isPoolMethod reports whether call invokes the named method on a
// linepool.Pool receiver.
func isPoolMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == poolPkgSuffix || strings.HasSuffix(p, "/"+poolPkgSuffix)
}

// acquisition is one tracked `b := pool.Get(...)` site.
type acquisition struct {
	obj  types.Object
	call *ast.CallExpr
	stmt ast.Node // the assignment node, to locate it in the CFG
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, g *cfg.CFG) {
	// Collect acquisitions: pool.Get results bound to a local variable. A
	// Get used directly as an argument or stored immediately is an immediate
	// handoff; a Get whose result is discarded is a leak right away.
	var acqs []*acquisition
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		stmt, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isPoolMethod(pass, call, "Get") {
				pass.Report(analysis.Diagnostic{
					Pos:     call.Pos(),
					Message: "linepool.Get result discarded: the buffer leaks from the pool immediately",
				})
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return true
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || !isPoolMethod(pass, call, "Get") {
				return true
			}
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			obj := pass.TypesInfo.ObjectOf(id)
			if obj == nil {
				return true
			}
			acqs = append(acqs, &acquisition{obj: obj, call: call, stmt: s})
		}
		return true
	})

	for _, a := range acqs {
		trackAcquisition(pass, g, a)
	}
}

// ownState is the per-path tracking state of one buffer.
type ownState int

const (
	owned ownState = iota
	released
)

// event kinds, ordered by source position within a node.
type eventKind int

const (
	evRelease eventKind = iota
	evTransfer
	evGlobalStore
	evOverwrite
	evUse
)

type event struct {
	pos  token.Pos
	kind eventKind
}

// trackAcquisition walks the CFG from the acquisition with a
// depth-first search over (block, state), reporting ownership violations.
func trackAcquisition(pass *analysis.Pass, g *cfg.CFG, a *acquisition) {
	// Locate the acquisition inside the CFG.
	startBlock, startIdx := -1, -1
	for bi, b := range g.Blocks {
		for ni, n := range b.Nodes {
			if n == a.stmt {
				startBlock, startIdx = bi, ni
				break
			}
		}
		if startBlock >= 0 {
			break
		}
	}
	if startBlock < 0 {
		return // unreachable code; the CFG dropped it
	}

	leakReported := false
	leak := func() {
		if !leakReported {
			leakReported = true
			pass.Report(analysis.Diagnostic{
				Pos:     a.call.Pos(),
				Message: fmt.Sprintf("linepool buffer %s is not released or handed off on every path (missing Put or ownership transfer)", a.obj.Name()),
			})
		}
	}

	type visitKey struct {
		block int
		state ownState
	}
	visited := make(map[visitKey]bool)

	// walk processes block bi starting at node index ni with the given
	// state; it returns nothing — violations are reported as found.
	var walk func(bi, ni int, state ownState)
	walk = func(bi, ni int, state ownState) {
		b := g.Blocks[bi]
		for ; ni < len(b.Nodes); ni++ {
			for _, ev := range nodeEvents(pass, b.Nodes[ni], a) {
				switch ev.kind {
				case evRelease:
					if state == released {
						pass.Report(analysis.Diagnostic{
							Pos:     ev.pos,
							Message: fmt.Sprintf("linepool buffer %s released twice on this path (double Put corrupts the free list)", a.obj.Name()),
						})
						return
					}
					state = released
				case evTransfer:
					if state == released {
						pass.Report(analysis.Diagnostic{
							Pos:     ev.pos,
							Message: fmt.Sprintf("use of linepool buffer %s after Put: the pool may already have recycled it", a.obj.Name()),
						})
						return
					}
					return // ownership handed off; this path is done
				case evGlobalStore:
					pass.Report(analysis.Diagnostic{
						Pos:     ev.pos,
						Message: fmt.Sprintf("linepool buffer %s stored in a package-level variable: buffers must not outlive their transaction scope", a.obj.Name()),
					})
					return
				case evOverwrite:
					if state == owned {
						pass.Report(analysis.Diagnostic{
							Pos:     ev.pos,
							Message: fmt.Sprintf("linepool buffer %s overwritten while still owned (the previous buffer leaks)", a.obj.Name()),
						})
					}
					return
				case evUse:
					if state == released {
						pass.Report(analysis.Diagnostic{
							Pos:     ev.pos,
							Message: fmt.Sprintf("use of linepool buffer %s after Put: the pool may already have recycled it", a.obj.Name()),
						})
						return
					}
				}
			}
		}
		if len(b.Succs) == 0 {
			if state == owned {
				leak()
			}
			return
		}
		for _, succ := range b.Succs {
			key := visitKey{block: int(succ.Index), state: state}
			if visited[key] {
				continue
			}
			visited[key] = true
			walk(int(succ.Index), 0, state)
		}
	}
	// Start just past the acquisition itself.
	walk(startBlock, startIdx+1, owned)
}

// nodeEvents extracts the ordered ownership events node n produces for the
// tracked buffer.
func nodeEvents(pass *analysis.Pass, n ast.Node, a *acquisition) []event {
	var evs []event
	add := func(pos token.Pos, k eventKind) { evs = append(evs, event{pos: pos, kind: k}) }

	// usesObj reports whether expr reads the tracked variable.
	usesObj := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == a.obj {
				found = true
				return false
			}
			return true
		})
		return found
	}

	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if isPoolMethod(pass, m, "Put") && len(m.Args) == 1 && usesObj(m.Args[0]) {
				add(m.Pos(), evRelease)
				return false
			}
			// Builtins (len, cap, copy, append as a read) inspect the buffer
			// without taking ownership.
			if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					for _, arg := range m.Args {
						if usesObj(arg) {
							add(arg.Pos(), evUse)
						}
					}
					return false
				}
			}
			for _, arg := range m.Args {
				if valueEscapes(pass, a, arg) {
					add(arg.Pos(), evTransfer)
					return false
				}
				if usesObj(arg) {
					add(arg.Pos(), evUse) // e.g. b[0], len(b): a read, not a handoff
				}
			}
			// Still examine the function expression (method receiver reads).
			if usesObj(m.Fun) {
				add(m.Fun.Pos(), evUse)
			}
			return false
		case *ast.AssignStmt:
			for i, lhs := range m.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == a.obj {
					add(lhs.Pos(), evOverwrite)
				} else if usesObj(lhs) {
					add(lhs.Pos(), evUse) // b[i] = x writes through the buffer
				}
				if i < len(m.Rhs) {
					classifyStore(pass, a, m.Lhs[i], m.Rhs[i], add, usesObj)
				}
			}
			if len(m.Rhs) == 1 && len(m.Lhs) != 1 {
				classifyStore(pass, a, nil, m.Rhs[0], add, usesObj)
			}
			return false
		case *ast.SendStmt:
			if usesObj(m.Value) {
				add(m.Value.Pos(), evTransfer)
			}
			if usesObj(m.Chan) {
				add(m.Chan.Pos(), evUse)
			}
			return false
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				if usesObj(r) {
					add(r.Pos(), evTransfer)
				}
			}
			return false
		case *ast.CompositeLit:
			for _, elt := range m.Elts {
				if usesObj(elt) {
					add(elt.Pos(), evTransfer)
					return false
				}
			}
		case *ast.Ident:
			if pass.TypesInfo.Uses[m] == a.obj {
				add(m.Pos(), evUse)
			}
		}
		return true
	})

	// Source order.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j-1].pos > evs[j].pos; j-- {
			evs[j-1], evs[j] = evs[j], evs[j-1]
		}
	}
	return evs
}

// valueEscapes reports whether e embeds the tracked buffer itself — the bare
// identifier, possibly wrapped in composite literals (mem.Request{Data: b}),
// key-value pairs, address-of, or nested calls/conversions — as opposed to a
// read through it (b[0], len(b)). An embedding argument hands the slice
// header to the callee, which may retain it, so it counts as a transfer.
func valueEscapes(pass *analysis.Pass, a *acquisition, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e] == a.obj
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if valueEscapes(pass, a, elt) {
				return true
			}
		}
	case *ast.KeyValueExpr:
		return valueEscapes(pass, a, e.Value)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return valueEscapes(pass, a, e.X)
		}
	case *ast.CallExpr:
		for _, arg := range e.Args {
			if valueEscapes(pass, a, arg) {
				return true
			}
		}
	}
	return false
}

// classifyStore decides what an assignment of the tracked buffer into lhs
// means: a package-level store is forbidden; anything else (field, slice
// slot, local alias) transfers ownership.
func classifyStore(pass *analysis.Pass, a *acquisition, lhs, rhs ast.Expr, add func(token.Pos, eventKind), usesObj func(ast.Expr) bool) {
	if !usesObj(rhs) {
		return
	}
	if lhs != nil {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil && obj.Parent() == pass.Pkg.Scope() {
				add(rhs.Pos(), evGlobalStore)
				return
			}
		}
	}
	add(rhs.Pos(), evTransfer)
}
