// Quickstart: store a value, write it back with CBO.CLEAN, fence, and
// verify it reached the persistence domain — the Fig. 5(c) pattern — on the
// cycle-accurate simulator, with and without Skip It for a batch of
// redundant writebacks.
package main

import (
	"fmt"
	"log"

	"skipit"
)

func main() {
	// 1. The basic durability chain: store -> CBO.CLEAN -> FENCE.
	sys := skipit.NewSystem(1)
	prog := skipit.NewProgram().
		Store(0x1000, 42).
		CboClean(0x1000).
		Fence().
		Build()
	if _, err := sys.Run([]*skipit.Program{prog}, 1_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after store+clean+fence: NVMM[0x1000] = %d (want 42)\n",
		skipit.NVMMValue(sys, 0x1000))

	// 2. Without the writeback, the store stays volatile: a crash loses it.
	sys2 := skipit.NewSystem(1)
	if _, err := sys2.Run([]*skipit.Program{
		skipit.NewProgram().Store(0x2000, 7).Build()}, 1_000_000); err != nil {
		log.Fatal(err)
	}
	sys2.Crash(false)
	fmt.Printf("after store+crash (no writeback): NVMM[0x2000] = %d (want 0)\n",
		skipit.NVMMValue(sys2, 0x2000))

	// 3. Skip It drops redundant writebacks in the L1 (§6). Issue one real
	// clean and ten redundant ones; compare the flush unit's statistics.
	for _, skipIt := range []bool{true, false} {
		cfg := skipit.DefaultSystemConfig(1)
		cfg.L1.Flush.SkipIt = skipIt
		s := skipit.NewSystemWithConfig(cfg)
		b := skipit.NewProgram().Store(0x3000, 1).CboClean(0x3000).Fence()
		for i := 0; i < 10; i++ {
			b.CboClean(0x3000)
		}
		b.Fence()
		if _, err := s.Run([]*skipit.Program{b.Build()}, 1_000_000); err != nil {
			log.Fatal(err)
		}
		st := s.L1s[0].FlushUnit().Stats()
		fmt.Printf("skipit=%-5v: %2d CBO.CLEAN offered, %2d dropped by the skip bit, "+
			"%d RootReleases reached the L2\n",
			skipIt, st.Offered, st.SkipDropped, st.RootReleases)
	}
}
