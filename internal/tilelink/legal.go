package tilelink

// This file holds the agent-facing legality helpers: pure functions mapping a
// client's current permission state to the protocol-legal message it may emit
// next. The L1 hardcodes these decisions inside its MSHR and writeback state
// machines; protocol-level master agents (internal/tlctest) and the scoreboard
// lattice tests use the helpers directly, so "what is legal here" has exactly
// one definition.

// LegalFrom reports whether a client currently holding p may issue an Acquire
// with this grow parameter. TileLink requires the declared source level to
// match the held level: a Branch holder upgrades with BtoT, a None holder
// acquires with NtoB or NtoT, and a Trunk holder has nothing to acquire.
//
//skipit:hotpath
func (g Grow) LegalFrom(p Perm) bool { return g.From() == p }

// GrowFor returns the Acquire parameter that takes a client from cur to
// target. ok is false when no legal single Acquire performs the transition:
// the client already holds target (or more), or the transition is a
// downgrade (channel C business, not channel A).
//
//skipit:hotpath
func GrowFor(cur, target Perm) (Grow, bool) {
	switch {
	case cur == PermNone && target == PermBranch:
		return GrowNtoB, true
	case cur == PermNone && target == PermTrunk:
		return GrowNtoT, true
	case cur == PermBranch && target == PermTrunk:
		return GrowBtoT, true
	}
	return GrowNtoB, false
}

// ProbeResp computes the legal response to a Probe with ceiling cap for a
// client holding cur, with dirty reporting whether the local copy carries
// unwritten-back modifications. It returns the response opcode, its Shrink
// parameter, the permission retained afterwards, and whether the response
// must carry the line data (a dirty copy being demoted below Trunk is the
// only copy of its modifications; surrendering write permission without
// surrendering the data would lose them).
//
//skipit:hotpath
func ProbeResp(cur Perm, dirty bool, cap Cap) (op Opcode, sh Shrink, to Perm, carryData bool) {
	to = cur
	if p := cap.Perm(); p < to {
		to = p
	}
	carryData = dirty && cur == PermTrunk && to != PermTrunk
	op = OpProbeAck
	if carryData {
		op = OpProbeAckData
	}
	return op, ShrinkFor(cur, to), to, carryData
}

// ReleaseFor returns the voluntary-release opcode and Shrink parameter for a
// client downgrading from cur to target, with dirty as for ProbeResp. ok is
// false when the transition is not a legal voluntary release: upgrades belong
// on channel A, and releasing from None releases nothing.
func ReleaseFor(cur, target Perm, dirty bool) (op Opcode, sh Shrink, ok bool) {
	if cur == PermNone || target >= cur {
		return OpRelease, ShrinkNtoN, false
	}
	op = OpRelease
	if dirty && cur == PermTrunk {
		op = OpReleaseData
	}
	return op, ShrinkFor(cur, target), true
}

// GrantCap returns the permission ceiling a manager grants in response to the
// given grow request: shared growth receives Branch, exclusive growth Trunk.
// This mirrors the L2's grant construction so agents can check the cap they
// receive against the one the protocol mandates.
//
//skipit:hotpath
func GrantCap(g Grow) Cap {
	if g == GrowNtoB {
		return CapToB
	}
	return CapToT
}
