package sweep

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Corruption fixtures: every malformed baseline a gate run might load must
// produce a *CorruptError naming the file and the offending field — never a
// panic, and never a silent pass that lets a drifted baseline approve a
// regression.
func TestLoadFileCorruptionFixtures(t *testing.T) {
	cases := []struct {
		name  string
		body  string
		field string // expected CorruptError.Field substring
	}{
		{"truncated", `{"schema_version":1,"group":"g","records":[{"name":"p","cyc`, "(document)"},
		{"empty", ``, "(document)"},
		{"wrong-type-cycles", `{"schema_version":1,"group":"g","records":[{"name":"p","fingerprint":"f","cycles":"fast","reps":1}]}`, "cycles"},
		{"wrong-type-records", `{"schema_version":1,"group":"g","records":{"name":"p"}}`, "records"},
		{"missing-name", `{"schema_version":1,"group":"g","records":[{"fingerprint":"f","cycles":1,"reps":1}]}`, "records[0].name"},
		{"missing-fingerprint", `{"schema_version":1,"group":"g","records":[{"name":"p","cycles":1,"reps":1}]}`, "records[0].fingerprint"},
		{"negative-cycles", `{"schema_version":1,"group":"g","records":[{"name":"p","fingerprint":"f","cycles":-4,"reps":1}]}`, "records[0].cycles"},
		{"negative-reps", `{"schema_version":1,"group":"g","records":[{"name":"p","fingerprint":"f","cycles":1,"reps":-1}]}`, "records[0].reps"},
		{"duplicate-name", `{"schema_version":1,"group":"g","records":[` +
			`{"group":"g","name":"p","fingerprint":"f","cycles":1,"reps":1},` +
			`{"group":"g","name":"p","fingerprint":"f2","cycles":2,"reps":1}]}`, "records[1].name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), FileName("g"))
			if err := os.WriteFile(path, []byte(tc.body), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadFile(path)
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("LoadFile = %v, want *CorruptError", err)
			}
			if ce.Path != path {
				t.Errorf("CorruptError.Path = %q, want %q", ce.Path, path)
			}
			if !strings.Contains(ce.Field, tc.field) {
				t.Errorf("CorruptError.Field = %q, want substring %q", ce.Field, tc.field)
			}
			if !strings.Contains(ce.Error(), path) {
				t.Errorf("error text %q does not name the file", ce.Error())
			}
		})
	}
}

// A stale schema version is its own failure mode (re-measure everything),
// distinct from corruption.
func TestLoadFileStaleSchemaIsNotCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName("g"))
	body := `{"schema_version":999,"group":"g","records":[]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFile(path)
	if err == nil {
		t.Fatal("stale schema loaded silently")
	}
	var ce *CorruptError
	if errors.As(err, &ce) {
		t.Fatalf("stale schema misclassified as corruption: %v", err)
	}
	if !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("unhelpful stale-schema error: %v", err)
	}
}

// NaN cycles cannot arrive via JSON (encoding/json rejects them), but a
// hand-constructed File must still fail validation rather than flow into
// Compare where NaN comparisons silently pass.
func TestValidateRejectsNaN(t *testing.T) {
	nan := 0.0
	nan = nan / nan
	f := File{SchemaVersion: SchemaVersion, Group: "g",
		Records: []Record{{Name: "p", Fingerprint: "f", Cycles: nan, Reps: 1}}}
	var ce *CorruptError
	if err := f.Validate("mem"); !errors.As(err, &ce) || !strings.Contains(ce.Field, "cycles") {
		t.Fatalf("Validate(NaN cycles) = %v", err)
	}
}

// The gate path end to end: a corrupt baseline makes the comparison
// impossible and must surface the typed error, not a 0-point "pass".
func TestGateFailsClosedOnCorruptBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_quick.json")
	if err := os.WriteFile(path, []byte(`{"schema_version":1,"records":[{"name":"p"`), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := LoadFile(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupt baseline load = %v, want *CorruptError", err)
	}
	// The contract callers rely on: a failed load returns zero records, so
	// nobody can accidentally Compare against a half-parsed baseline.
	if len(base.Records) != 0 {
		t.Fatalf("failed load leaked %d records", len(base.Records))
	}
}
