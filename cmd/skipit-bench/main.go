// Command skipit-bench regenerates every table and figure of the paper's
// evaluation (§7) as printed series. See EXPERIMENTS.md for the side-by-side
// comparison with the published results.
//
// Usage:
//
//	skipit-bench [-fig 9|10|11|12|13|14|15|16|all] [-quick] [-csv]
//	             [-metrics-dir DIR]
//
// -quick shrinks sweep sizes and operation counts so the full set completes
// in well under a minute; -csv emits machine-readable rows (figure,series,
// x,y) for plotting instead of the human-readable tables. -metrics-dir
// writes one figNN.metrics.json sidecar per cycle-accurate figure (9-13)
// holding the labeled telemetry snapshot of every measurement run, so
// figure-level latencies can be cross-examined against hardware counters
// (skip rates, stall attribution, DRAM traffic) without re-running.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"skipit/internal/bench"
	"skipit/internal/commercial"
	"skipit/internal/metrics"
)

// sidecar accumulates the labeled snapshots of one figure's measurement runs
// and writes them as a JSON sidecar file. A nil sidecar is a no-op.
type sidecar struct {
	dir, fig string
	snaps    []labeledSnapshot
}

type labeledSnapshot struct {
	Label    string           `json:"label"`
	Snapshot metrics.Snapshot `json:"snapshot"`
}

// begin installs the collector as the bench snapshot sink.
func newSidecar(dir, fig string) *sidecar {
	if dir == "" {
		return nil
	}
	sc := &sidecar{dir: dir, fig: fig}
	bench.SnapshotSink = func(label string, snap metrics.Snapshot) {
		sc.snaps = append(sc.snaps, labeledSnapshot{Label: label, Snapshot: snap})
	}
	return sc
}

// close detaches the sink and writes DIR/figNN.metrics.json.
func (sc *sidecar) close() {
	if sc == nil {
		return
	}
	bench.SnapshotSink = nil
	path := filepath.Join(sc.dir, sc.fig+".metrics.json")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	if err := enc.Encode(sc.snaps); err != nil {
		log.Fatalf("writing %s: %v", path, err)
	}
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 9..16 or all")
	quick := flag.Bool("quick", false, "reduced sweeps for a fast pass")
	csv := flag.Bool("csv", false, "emit figure,series,x,y rows for plotting")
	metricsDir := flag.String("metrics-dir", "", "write per-figure metrics sidecar JSON files into this directory")
	flag.Parse()
	if *metricsDir != "" {
		if err := os.MkdirAll(*metricsDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	if *csv {
		fmt.Println("figure,series,x,y")
	}

	if *quick {
		bench.Reps = 1
		bench.Sizes = []uint64{64, 1024, 4096, 32768}
		bench.ThreadCounts = []int{1, 8}
		bench.PersistOpsPerThr = 4000
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	ran := false

	if all || want["9"] {
		ran = true
		sc := newSidecar(*metricsDir, "fig9")
		rows := bench.Fig9(false)
		sc.close()
		if *csv {
			for _, r := range rows {
				fmt.Printf("9,%dT,%d,%.0f\n", r.Threads, r.Size, r.Cycles)
			}
		} else {
			header("Figure 9 — CBO.X latency vs writeback size and thread count (cycles)")
			fmt.Println("paper anchors: 1 line ~100 cy; 32 KiB ~7460 cy; 8 threads ~7.2x faster")
			for _, r := range rows {
				fmt.Println("  ", r)
			}
		}
	}
	if all || want["10"] {
		ran = true
		sc := newSidecar(*metricsDir, "fig10")
		rows := bench.Fig10(bench.ThreadCounts)
		sc.close()
		if *csv {
			for _, r := range rows {
				op := "flush"
				if r.Clean {
					op = "clean"
				}
				fmt.Printf("10,%s-%dT,%d,%.0f\n", op, r.Threads, r.Size, r.Cycles)
			}
		} else {
			header("Figure 10 — write, 10x CBO.X, fence, re-read (cycles)")
			fmt.Println("paper: re-read after CBO.CLEAN ~2x faster than after CBO.FLUSH")
			for _, r := range rows {
				fmt.Println("  ", r)
			}
		}
	}
	if all || want["11"] || want["12"] {
		ran = true
		for _, threads := range []int{1, 8} {
			if threads == 1 && !(all || want["11"]) {
				continue
			}
			if threads == 8 && !(all || want["12"]) {
				continue
			}
			figNo := map[int]int{1: 11, 8: 12}[threads]
			sc := newSidecar(*metricsDir, fmt.Sprintf("fig%d", figNo))
			if *csv {
				for _, clean := range []bool{false, true} {
					op := "CBO.FLUSH"
					if clean {
						op = "CBO.CLEAN"
					}
					for _, size := range bench.Sizes {
						fmt.Printf("%d,SonicBOOM-%s,%d,%.0f\n", figNo, op, size, bench.SweepOnce(size, threads, clean))
					}
				}
				for _, m := range commercial.Models() {
					for _, size := range bench.Sizes {
						fmt.Printf("%d,%s-%s,%d,%.0f\n", figNo, m.Vendor, m.Instr, size, m.Latency(size, threads))
					}
				}
				sc.close()
				continue
			}
			header(fmt.Sprintf("Figure %d — comparative writeback latency, %d thread(s) (cycles)",
				figNo, threads))
			fmt.Printf("  %-22s", "size")
			for _, size := range bench.Sizes {
				fmt.Printf("%9d", size)
			}
			fmt.Println()
			// SonicBOOM rows from the cycle simulator.
			for _, clean := range []bool{false, true} {
				op := "CBO.FLUSH"
				if clean {
					op = "CBO.CLEAN"
				}
				fmt.Printf("  %-22s", "SonicBOOM "+op)
				for _, size := range bench.Sizes {
					fmt.Printf("%9.0f", bench.SweepOnce(size, threads, clean))
				}
				fmt.Println()
			}
			// Commercial rows from the analytic models.
			for _, m := range commercial.Models() {
				fmt.Printf("  %-22s", m.Vendor+" "+m.Instr)
				for _, size := range bench.Sizes {
					fmt.Printf("%9.0f", m.Latency(size, threads))
				}
				fmt.Println()
			}
			sc.close()
		}
	}
	if all || want["13"] {
		ran = true
		sc := newSidecar(*metricsDir, "fig13")
		rows := bench.Fig13(bench.ThreadCounts, 10)
		sc.close()
		if *csv {
			for _, r := range rows {
				mode := "naive"
				if r.SkipIt {
					mode = "skipit"
				}
				fmt.Printf("13,%s-%dT,%d,%.0f\n", mode, r.Threads, r.Size, r.Cycles)
			}
		} else {
			header("Figure 13 — naive vs Skip It, 10 redundant CBO.X per line (cycles)")
			fmt.Println("paper: Skip It 15-30% faster (CBO.CLEAN variant; see EXPERIMENTS.md)")
			for _, r := range rows {
				fmt.Println("  ", r)
			}
		}
	}
	if all || want["14"] {
		ran = true
		rows14 := bench.Fig14()
		if *csv {
			for _, r := range rows14 {
				fmt.Printf("14,%s-%s,%s,%.4f\n", r.Structure, r.Mode, r.Policy, r.Mops)
			}
		} else {
			header("Figure 14 — §7.4 throughput, 5% updates, 2 threads (Mops/s)")
			fmt.Println("paper: Skip It >= FliT variants; link-and-persist ahead on automatic list/hash")
			for _, r := range rows14 {
				fmt.Println("  ", r)
			}
		}
	}
	if all || want["15"] {
		ran = true
		pcts := []int{0, 5, 20, 50}
		if !*quick {
			pcts = []int{0, 5, 10, 20, 50, 100}
		}
		rows15 := bench.Fig15(pcts)
		if *csv {
			for _, r := range rows15 {
				fmt.Printf("15,%s-%s,%d,%.4f\n", r.Structure, r.Policy, r.UpdatePct, r.Mops)
			}
		} else {
			header("Figure 15 — throughput vs update percentage, automatic algorithm (Mops/s)")
			for _, r := range rows15 {
				fmt.Println("  ", r)
			}
		}
	}
	if all || want["16"] {
		ran = true
		sizes := []uint64{1 << 6, 1 << 12, 1 << 16, 1 << 20}
		if !*quick {
			sizes = nil // full default sweep
		}
		rows16 := bench.Fig16(sizes)
		if *csv {
			for _, r := range rows16 {
				fmt.Printf("16,flit-hash,%d,%.4f\n", r.TableEntries, r.Mops)
			}
		} else {
			header("Figure 16 — BST (10k keys) throughput vs FliT hash-table size (Mops/s)")
			fmt.Println("paper: throughput is sensitive to the table size on the small-cache platform")
			for _, r := range rows16 {
				fmt.Println("  ", r)
			}
		}
	}

	if !ran {
		fmt.Fprintf(os.Stderr, "unknown figure %q (want 9..16 or all)\n", *fig)
		os.Exit(2)
	}
}

func header(s string) {
	fmt.Println()
	fmt.Println("==", s)
}
