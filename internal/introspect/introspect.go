// Package introspect is the live debugging server for a running simulation:
// an opt-in HTTP endpoint (skipit-sim -http, skipit-bench -http) that exposes
// the SoC's telemetry while a run is in flight, without perturbing it.
//
// Endpoints:
//
//	/          index with endpoint listing
//	/metrics   last published snapshot in Prometheus text exposition format
//	/snapshot  last published snapshot as JSON (sim.System.Snapshot shape)
//	/trace     Chrome trace_event JSON of the attached tracer, loadable in
//	           Perfetto mid-run (the document so far; the run keeps going)
//	/recorder  flight-recorder dump of the attached recorder (last N events
//	           per component)
//	/events    Server-Sent Events stream of progress updates: snapshot
//	           headlines (cycle, throughput, fast-forward ratio) and sweep
//	           job state transitions
//
// The server never reads simulator state on its own: the simulation
// goroutine publishes rendered snapshots at its own pace (via
// sim.System.SetProgressHook or the bench harness's sweep progress
// callback), and HTTP handlers serve the latest published bytes from an
// atomic cell. The only cross-goroutine reads are the Chrome tracer's and
// flight recorder's own internally synchronized snapshots. A simulation
// without a server attached publishes nothing and pays nothing.
package introspect

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"

	"skipit/internal/metrics"
	"skipit/internal/trace"
)

// Server is one live introspection endpoint. Construct with New.
type Server struct {
	ln  net.Listener
	srv *http.Server
	mux *http.ServeMux

	// snapJSON and promText hold the latest published snapshot, rendered
	// once at publish time on the publisher's goroutine.
	snapJSON atomic.Value // []byte
	promText atomic.Value // []byte

	mu     sync.Mutex
	tracer *trace.ChromeTracer
	rec    *trace.Recorder
	subs   map[chan []byte]struct{}
	closed bool
}

// New starts a server listening on addr ("localhost:6060", ":0" for an
// ephemeral port). The returned server is already serving; call Addr for the
// bound address and Close to stop.
func New(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("introspect: %w", err)
	}
	s := &Server{ln: ln, subs: make(map[chan []byte]struct{})}
	mux := http.NewServeMux()
	s.mux = mux
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/recorder", s.handleRecorder)
	mux.HandleFunc("/events", s.handleEvents)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound listen address ("127.0.0.1:6060").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Handle mounts an additional handler on the server's mux, sharing the
// listener and lifecycle. This is how service layers (the sweepd job API)
// ride on the introspection server instead of opening a second port; pattern
// must not collide with the built-in endpoints. Safe to call while serving.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// AttachChromeTrace makes the tracer's in-progress document available at
// /trace. The tracer stays owned by the caller (and its Close still writes
// the final file).
func (s *Server) AttachChromeTrace(t *trace.ChromeTracer) {
	s.mu.Lock()
	s.tracer = t
	s.mu.Unlock()
}

// AttachRecorder makes the flight recorder's rings available at /recorder.
func (s *Server) AttachRecorder(r *trace.Recorder) {
	s.mu.Lock()
	s.rec = r
	s.mu.Unlock()
}

// PublishSnapshot renders and installs a new snapshot for /metrics and
// /snapshot, and pushes a headline event (cycle, host throughput,
// fast-forward ratio) to /events subscribers. Call it from the goroutine
// that owns the snapshot — typically a sim progress hook.
func (s *Server) PublishSnapshot(snap metrics.Snapshot) {
	if b, err := json.Marshal(snap); err == nil {
		s.snapJSON.Store(b)
	}
	var prom jsonBuffer
	if err := snap.WritePrometheus(&prom); err == nil {
		s.promText.Store(prom.b)
	}
	headline := map[string]any{"cycle": snap.Cycle}
	for _, k := range []string{"host_sim_cycles_per_sec", "ff_skipped_cycle_ratio"} {
		if v, ok := snap.Derived[k]; ok {
			headline[k] = v
		}
	}
	s.PublishEvent("snapshot", headline)
}

// PublishEvent pushes one named SSE event to every /events subscriber.
// Slow subscribers drop events rather than stall the publisher. Safe for
// concurrent use (sweep workers publish job transitions concurrently).
func (s *Server) PublishEvent(event string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	frame := []byte(fmt.Sprintf("event: %s\ndata: %s\n\n", event, data))
	s.mu.Lock()
	for ch := range s.subs {
		select {
		case ch <- frame:
		default: // subscriber lagging; drop
		}
	}
	s.mu.Unlock()
}

// Close stops the listener and disconnects every /events subscriber.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for ch := range s.subs {
		close(ch)
	}
	s.subs = map[chan []byte]struct{}{}
	s.mu.Unlock()
	return s.srv.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `skipit introspection server
/metrics   Prometheus text exposition of the latest snapshot
/snapshot  latest metrics snapshot as JSON
/trace     Chrome trace_event document so far (open in Perfetto)
/recorder  flight-recorder dump (last N events per component)
/events    SSE progress stream
`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	b, _ := s.promText.Load().([]byte)
	if b == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(b)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	b, _ := s.snapJSON.Load().([]byte)
	if b == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	t := s.tracer
	s.mu.Unlock()
	if t == nil {
		http.Error(w, "no chrome tracer attached (run with -trace -trace-format=chrome)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="skipit-trace.json"`)
	t.WriteSnapshot(w) //nolint:errcheck // client disconnects are not actionable
}

func (s *Server) handleRecorder(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	rec := s.rec
	s.mu.Unlock()
	if rec == nil {
		http.Error(w, "no flight recorder armed", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rec.Dump()) //nolint:errcheck // client disconnects are not actionable
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch := make(chan []byte, 64)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		http.Error(w, "server closing", http.StatusServiceUnavailable)
		return
	}
	s.subs[ch] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		if _, live := s.subs[ch]; live {
			delete(s.subs, ch)
		}
		s.mu.Unlock()
	}()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": connected\n\n")
	fl.Flush()
	for {
		select {
		case frame, ok := <-ch:
			if !ok {
				return
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// jsonBuffer is a minimal io.Writer accumulating into a byte slice (avoiding
// a bytes.Buffer whose backing array would be shared after Store).
type jsonBuffer struct{ b []byte }

func (j *jsonBuffer) Write(p []byte) (int, error) {
	j.b = append(j.b, p...)
	return len(p), nil
}
