// Package hotalloc implements the skipit-vet analyzer that makes the CI
// alloc-gate's steady-state guarantee (BenchmarkStep: 1 alloc/op) a
// compile-time property. Functions annotated with a
//
//	//skipit:hotpath
//
// directive in their doc comment are the per-cycle paths — Step, the
// NextEvent fold, the linepool and tilelink fast paths. Inside them the
// analyzer reports every construct that allocates (or is indistinguishable,
// statically, from one that allocates), with the precise source position the
// benchmark-based gate cannot give:
//
//   - make / new
//   - append (growth cannot be bounded statically, so any append is suspect)
//   - map, slice, and pointer-to-composite literals
//   - closures that capture variables (the closure header is heap-allocated
//     when it escapes, e.g. via defer in a loop or storage)
//   - interface boxing: converting a non-pointer concrete value to an
//     interface type (call arguments, assignments, returns, conversions)
//   - string <-> []byte / []rune conversions
//   - defer inside a loop (deferred records are heap-allocated there)
//
// Cold fallbacks that live inside a hot function (the linepool's make on
// pool miss) carry //skipit:ignore waivers with reasons, keeping every
// intentional allocation documented at its site.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"skipit/internal/analysis/suppress"
)

// Directive marks a function as a zero-alloc hot path.
const Directive = "//skipit:hotpath"

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "report allocation sites inside //skipit:hotpath functions\n\n" +
		"Turns the benchmark-based 1-alloc/op CI gate into a static check with exact positions.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	suppress.Apply(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil || !isHotpath(fn) {
			return
		}
		checkBody(pass, fn)
	})
	return nil, nil
}

// isHotpath reports whether the function's doc comment carries the
// //skipit:hotpath directive.
func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return true
		}
	}
	return false
}

func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	report := func(pos token.Pos, format string, args ...interface{}) {
		pass.Report(analysis.Diagnostic{
			Pos:     pos,
			Message: fmt.Sprintf(format, args...) + fmt.Sprintf(" in hot path %s", fn.Name.Name),
		})
	}

	// ast.Inspect has no exit hook, so track loop nesting with an interval
	// stack instead: a node is inside a loop if its position falls within a
	// recorded loop body.
	var loops []ast.Node
	inLoop := func(pos token.Pos) bool {
		for _, l := range loops {
			if l.Pos() <= pos && pos <= l.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)

		case *ast.CallExpr:
			checkCall(pass, fn, n, report)

		case *ast.CompositeLit:
			checkCompositeLit(pass, n, report)

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "pointer-to-composite literal allocates")
				}
			}

		case *ast.FuncLit:
			if captured := captures(pass, n); len(captured) > 0 {
				report(n.Pos(), "closure captures %s and may heap-allocate its environment", strings.Join(captured, ", "))
			}

		case *ast.DeferStmt:
			if inLoop(n.Pos()) {
				report(n.Pos(), "defer inside a loop heap-allocates its record")
			}

		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) {
					checkBoxing(pass, pass.TypesInfo.TypeOf(n.Lhs[i]), n.Rhs[i], report)
				}
			}

		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					checkBoxing(pass, pass.TypesInfo.TypeOf(name), n.Values[i], report)
				}
			}

		case *ast.ReturnStmt:
			sig, ok := pass.TypesInfo.TypeOf(fn.Name).(*types.Signature)
			if !ok || sig.Results() == nil || len(n.Results) != sig.Results().Len() {
				break
			}
			for i, res := range n.Results {
				checkBoxing(pass, sig.Results().At(i).Type(), res, report)
			}
		}
		return true
	})
}

// checkCall flags make/new/append, allocation-shaped conversions, and
// interface boxing at call argument positions.
func checkCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr, report func(token.Pos, string, ...interface{})) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				report(call.Pos(), "append may grow and allocate (growth is not statically boundable)")
			}
			return
		}
	}

	// Conversions: T(x).
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		target := tv.Type
		if len(call.Args) == 1 {
			argT := pass.TypesInfo.TypeOf(call.Args[0])
			if isInterface(target) {
				checkBoxing(pass, target, call.Args[0], report)
			} else if argT != nil && convAllocates(target, argT) {
				report(call.Pos(), "conversion %s -> %s copies and allocates", types.TypeString(argT, types.RelativeTo(pass.Pkg)), types.TypeString(target, types.RelativeTo(pass.Pkg)))
			}
		}
		return
	}

	// Ordinary calls: box-check each argument against its parameter type.
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				paramT = sig.Params().At(sig.Params().Len() - 1).Type()
			} else {
				paramT = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < sig.Params().Len():
			paramT = sig.Params().At(i).Type()
		}
		if paramT != nil {
			checkBoxing(pass, paramT, arg, report)
		}
	}
}

// checkCompositeLit flags literals that always allocate.
func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit, report func(token.Pos, string, ...interface{})) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		report(lit.Pos(), "map literal allocates")
	case *types.Slice:
		report(lit.Pos(), "slice literal allocates")
	}
	// Struct and array value literals live on the stack unless their address
	// escapes; the &T{...} case is reported at the UnaryExpr.
}

// checkBoxing reports a conversion of a concrete non-pointer-shaped value
// into an interface slot.
func checkBoxing(pass *analysis.Pass, dst types.Type, src ast.Expr, report func(token.Pos, string, ...interface{})) {
	if dst == nil || !isInterface(dst) {
		return
	}
	tv, ok := pass.TypesInfo.Types[src]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() || isInterface(tv.Type) {
		return
	}
	if pointerShaped(tv.Type) {
		return // the interface data word holds the value directly; no allocation
	}
	report(src.Pos(), "interface boxing of %s value allocates", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
}

// convAllocates reports conversions that copy backing storage.
func convAllocates(dst, src types.Type) bool {
	d, s := dst.Underlying(), src.Underlying()
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		sl, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(s) && isByteOrRuneSlice(d)) || (isByteOrRuneSlice(s) && isStr(d))
}

// isInterface reports whether t's underlying type is an interface.
func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// pointerShaped reports whether values of t fit in an interface's data word
// without allocation: pointers, channels, maps, funcs, unsafe.Pointer.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// captures returns the names of variables a function literal captures from
// enclosing scopes (package-level objects do not count).
func captures(pass *analysis.Pass, lit *ast.FuncLit) []string {
	seen := make(map[string]bool)
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared outside the literal but not at package scope.
		if v.Parent() == nil || v.Parent() == pass.Pkg.Scope() || v.Pkg() == nil || v.Pkg().Scope() == v.Parent() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		if !seen[v.Name()] {
			seen[v.Name()] = true
			out = append(out, v.Name())
		}
		return true
	})
	return out
}
