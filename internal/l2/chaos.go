package l2

import (
	"skipit/internal/tilelink"
	"skipit/internal/trace"
)

// Chaos is the fault-injection hook the L2 consults when armed. Both methods
// must be pure functions of the current cycle and the injector's schedule, so
// replays are bit-identical.
type Chaos interface {
	// MSHRQuota returns the number of MSHRs usable at cycle now; negative
	// means unlimited. In-flight transactions are never cancelled.
	MSHRQuota(now int64) int
	// ListBufferQuota returns the usable ListBuffer depth at cycle now;
	// negative means the configured depth. A squeeze back-pressures TL-A
	// and TL-C ingestion exactly like a full buffer.
	ListBufferQuota(now int64) int
}

// SetChaos installs (or, with nil, removes) the fault-injection hook.
func (c *Cache) SetChaos(ch Chaos) { c.chaos = ch }

// listBufferLimit is the effective ListBuffer depth at cycle now.
func (c *Cache) listBufferLimit(now int64) int {
	limit := c.cfg.ListBufferDepth
	if c.chaos != nil {
		if q := c.chaos.ListBufferQuota(now); q >= 0 && q < limit {
			limit = q
		}
	}
	return limit
}

// FlipOutcome classifies an attempted ECC-style bit flip; it mirrors the L1's
// l1.FlipOutcome encoding.
type FlipOutcome uint8

const (
	FlipMiss FlipOutcome = iota
	FlipBlocked
	FlipDirtyUnrecoverable
	FlipApplied
)

func (o FlipOutcome) String() string {
	return [...]string{"miss", "blocked", "dirty-unrecoverable", "applied"}[o]
}

// InjectBitFlip models a transient ECC-scale upset on the L2 frame holding
// addr. Only clean, transaction-free lines are corrupted: a clean inclusive
// L2 line is by definition identical to the DRAM copy, so detection at the
// next data read (grant time) recovers by refetching the backing store. A
// dirty line is the sole copy; a flip there is flagged unrecoverable and not
// applied.
func (c *Cache) InjectBitFlip(addr uint64, bit uint64) FlipOutcome {
	lineAddr := addr &^ (c.cfg.LineBytes - 1)
	l := c.lookup(lineAddr)
	if l == nil {
		return FlipMiss
	}
	if l.dirty {
		c.ctr.eccDirtyUnrec.Inc()
		return FlipDirtyUnrecoverable
	}
	if c.lineBusy(lineAddr) || l.reserved {
		return FlipBlocked
	}
	bit %= c.cfg.LineBytes * 8
	l.data[bit/8] ^= 1 << (bit % 8)
	if c.poisoned == nil {
		c.poisoned = make(map[uint64]struct{})
	}
	c.poisoned[lineAddr] = struct{}{}
	c.ctr.eccFlips.Inc()
	return FlipApplied
}

// eccRestore is the detection half of the L2 ECC model, called before the
// only read of clean line data (grant construction): a poisoned line is
// restored from the durable DRAM copy, modeling detection plus refetch. The
// restore is timing-free — the grant still pays its ordinary latency — which
// keeps recovery observable through the counter without perturbing the
// protocol.
func (c *Cache) eccRestore(now int64, l *line, addr uint64) {
	if len(c.poisoned) == 0 {
		return
	}
	if _, bad := c.poisoned[addr]; !bad {
		return
	}
	copy(l.data, c.mem.PeekLine(addr))
	delete(c.poisoned, addr)
	c.ctr.refetchRecoveries.Inc()
	trace.Emit(c.tr, now, "l2", "ecc-restore", addr, "poisoned line refetched from DRAM")
}

// clearPoison drops the poison mark when the frame's data is wholly replaced
// or the line leaves the cache.
func (c *Cache) clearPoison(addr uint64) {
	if len(c.poisoned) != 0 {
		delete(c.poisoned, addr&^(c.cfg.LineBytes-1))
	}
}

// --- test-only state pokers (invariant mutation tests) ---

// PokeDrop force-invalidates the L2 frame holding addr without probing
// clients, seeding an inclusion violation. Reports whether a line was
// resident.
func (c *Cache) PokeDrop(addr uint64) bool {
	l := c.lookup(addr &^ (c.cfg.LineBytes - 1))
	if l == nil {
		return false
	}
	l.valid = false
	return true
}

// PokePerm force-writes one directory entry, bypassing the protocol.
func (c *Cache) PokePerm(addr uint64, client int, p tilelink.Perm) bool {
	l := c.lookup(addr &^ (c.cfg.LineBytes - 1))
	if l == nil {
		return false
	}
	l.perms[client] = p
	return true
}

// PokeDropRootReleaseRaceData arms a test-only mutation that reverts the
// RootRelease-vs-eviction race fix: dirty RootRelease data arriving for a
// concurrently evicted line is dropped instead of captured for the MSHR's
// DRAM write-through. The acknowledgement then promises durability for data
// that never reached DRAM — the tlctest scoreboard's durability check must
// catch it.
func (c *Cache) PokeDropRootReleaseRaceData(on bool) { c.bugDropRaceWB = on }

// PokeDirty force-writes the dirty bit, bypassing the protocol.
func (c *Cache) PokeDirty(addr uint64, dirty bool) bool {
	l := c.lookup(addr &^ (c.cfg.LineBytes - 1))
	if l == nil {
		return false
	}
	l.dirty = dirty
	return true
}

func (s msState) String() string {
	return [...]string{
		"free", "start", "evict_probe", "evict_mem_write", "mem_read",
		"probe", "mem_write", "grant", "finish",
	}[s]
}

// MSHRDebug is the JSON-friendly view of one L2 MSHR, for hang reports.
type MSHRDebug struct {
	State         string `json:"state"`
	Addr          uint64 `json:"addr"`
	Client        int    `json:"client"`
	PendingProbes int    `json:"pending_probes"`
}

// CacheDebug snapshots the L2's transactional state for hang reports.
type CacheDebug struct {
	MSHRs      []MSHRDebug `json:"mshrs"`
	ListBuffer int         `json:"list_buffer"`
	StagedB    []int       `json:"staged_b"`
	StagedD    []int       `json:"staged_d"`
}

// Debug returns the cache's transactional state snapshot.
func (c *Cache) Debug() CacheDebug {
	dbg := CacheDebug{ListBuffer: len(c.listBuffer)}
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if m.state == msFree {
			continue
		}
		dbg.MSHRs = append(dbg.MSHRs, MSHRDebug{
			State: m.state.String(), Addr: m.addr, Client: m.client, PendingProbes: m.pendingProbes,
		})
	}
	for cl := 0; cl < c.cfg.NumClients; cl++ {
		dbg.StagedB = append(dbg.StagedB, len(c.outB[cl]))
		dbg.StagedD = append(dbg.StagedD, len(c.outD[cl]))
	}
	return dbg
}
