package linepool

import "testing"

func TestGetPutRecycles(t *testing.T) {
	p := New(64, nil)
	a := p.Get(64)
	if len(a) != 64 {
		t.Fatalf("len(a) = %d", len(a))
	}
	b := p.Get(64)
	p.Put(a)
	p.Put(b)
	if p.Free() != 2 {
		t.Fatalf("free depth %d, want 2", p.Free())
	}
	// LIFO: the most recently returned buffer comes back first —
	// deterministic reuse order is the whole point versus sync.Pool.
	if c := p.Get(64); &c[0] != &b[0] { //skipit:ignore poolown test compares recycled buffer identity by design
		t.Fatal("pool is not LIFO")
	}
	if d := p.Get(64); &d[0] != &a[0] { //skipit:ignore poolown test compares recycled buffer identity by design
		t.Fatal("pool is not LIFO at depth 2")
	}
	hits, misses, recycles := p.Stats()
	if hits != 2 || misses != 2 || recycles != 2 {
		t.Fatalf("stats = (%d, %d, %d), want (2, 2, 2)", hits, misses, recycles)
	}
}

func TestForeignSizesBypassPool(t *testing.T) {
	p := New(64, nil)
	b := p.Get(16) // smaller than the line: plain allocation, not counted
	if len(b) != 16 {
		t.Fatalf("len = %d", len(b))
	}
	p.Put(b) // ignored
	p.Put(nil)
	if p.Free() != 0 {
		t.Fatalf("foreign buffer entered the free list (depth %d)", p.Free())
	}
	hits, misses, recycles := p.Stats()
	if hits != 0 || misses != 0 || recycles != 0 {
		t.Fatalf("foreign traffic counted: (%d, %d, %d)", hits, misses, recycles)
	}
}

func TestNilPoolDegradesToAllocation(t *testing.T) {
	var p *Pool
	b := p.Get(64)
	if len(b) != 64 {
		t.Fatalf("nil pool Get: len %d", len(b))
	}
	p.Put(b)
	if p.Free() != 0 {
		t.Fatal("nil pool has a free list?")
	}
	hits, misses, recycles := p.Stats()
	if hits != 0 || misses != 0 || recycles != 0 {
		t.Fatal("nil pool counted something")
	}
}

func TestZeroAllocSteadyState(t *testing.T) {
	p := New(64, nil)
	buf := p.Get(64)
	p.Put(buf)
	if n := testing.AllocsPerRun(1000, func() {
		b := p.Get(64)
		p.Put(b)
	}); n != 0 {
		t.Fatalf("steady-state Get/Put allocates %.1f per op", n)
	}
}
