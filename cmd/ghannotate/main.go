// Command ghannotate turns skipit-vet's JSON findings into GitHub Actions
// workflow annotations, so lint findings appear inline on the pull-request
// diff:
//
//	go run ./cmd/skipit-vet -json ./... | go run ./cmd/ghannotate
//
// Each finding becomes an ::error command; paths are made repo-relative
// (annotations require it) against the current working directory or
// $GITHUB_WORKSPACE. Exit status: 0 when the input holds no findings,
// 1 otherwise — so the pipeline fails the job exactly when annotations were
// emitted.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	var findings []finding
	if err := json.NewDecoder(os.Stdin).Decode(&findings); err != nil {
		fmt.Fprintf(os.Stderr, "ghannotate: reading findings: %v\n", err)
		os.Exit(2)
	}

	root := os.Getenv("GITHUB_WORKSPACE")
	if root == "" {
		root, _ = os.Getwd()
	}

	for _, f := range findings {
		file := f.File
		if root != "" {
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
		}
		fmt.Printf("::error file=%s,line=%d,col=%d,title=skipit-vet/%s::%s\n",
			file, f.Line, f.Col, f.Analyzer, escape(f.Message))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ghannotate: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// escape encodes the characters the workflow-command grammar reserves in
// message data.
func escape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
