package ds

import (
	"sync/atomic"

	"skipit/internal/memsim"
	"skipit/internal/persist"
)

// listState is the atomically-swapped (next, marked) pair of a Harris list
// node. Go cannot tag pointer bits portably, so the pair lives behind one
// atomic pointer, which preserves the algorithm's single-CAS atomicity.
type listState struct {
	next   *listNode
	marked bool
}

type listNode struct {
	key   uint64
	addr  uint64 // simulated heap address; addr+8 is the state word
	state atomic.Pointer[listState]
}

func (n *listNode) stateAddr() uint64 { return n.addr + 8 }

// LinkedList is Harris's sorted lock-free linked list with logical deletion
// marks and physical unlinking during search.
type LinkedList struct {
	Common
	head *listNode
	tail *listNode
}

// NewLinkedList builds an empty list with head/tail sentinels.
func NewLinkedList(env *persist.Env, alloc *memsim.Allocator) *LinkedList {
	l := &LinkedList{Common: NewCommon(env, alloc)}
	l.tail = &listNode{key: ^uint64(0), addr: l.allocNode(2)}
	l.tail.state.Store(&listState{})
	l.head = &listNode{key: 0, addr: l.allocNode(2)}
	l.head.state.Store(&listState{next: l.tail})
	return l
}

// Name identifies the structure in benchmark output.
func (l *LinkedList) Name() string { return NameList }

// search returns the first unmarked pair (pred, curr) with curr.key >= key,
// physically removing marked nodes on the way (Harris's helping).
func (l *LinkedList) search(tid int, key uint64) (pred, curr *listNode) {
retry:
	for {
		pred = l.head
		l.env.ReadTraverse(tid, pred.stateAddr())
		predState := pred.state.Load()
		curr = predState.next
		for {
			l.env.ReadTraverse(tid, curr.stateAddr())
			currState := curr.state.Load()
			for currState.marked {
				// Help unlink the logically deleted node.
				unlinked := &listState{next: currState.next}
				if !pred.state.CompareAndSwap(predState, unlinked) {
					continue retry
				}
				l.env.WriteCommit(tid, pred.stateAddr())
				predState = unlinked
				curr = currState.next
				l.env.ReadTraverse(tid, curr.stateAddr())
				currState = curr.state.Load()
			}
			if curr.key >= key {
				return pred, curr
			}
			pred = curr
			predState = currState
			curr = currState.next
		}
	}
}

// Insert adds key; it reports false if already present.
func (l *LinkedList) Insert(tid int, key uint64) bool {
	checkKey(key)
	for {
		pred, curr := l.search(tid, key)
		l.env.ReadCritical(tid, curr.addr)
		if curr.key == key {
			l.env.EndOp(tid, false)
			return false
		}
		node := &listNode{key: key, addr: l.allocNode(2)}
		node.state.Store(&listState{next: curr})
		l.env.Write(tid, node.addr)        // key word
		l.env.Write(tid, node.stateAddr()) // next word
		l.env.FlushNew(tid, node.addr)
		predState := pred.state.Load()
		if predState.marked || predState.next != curr {
			continue
		}
		if pred.state.CompareAndSwap(predState, &listState{next: node}) {
			l.env.WriteCommit(tid, pred.stateAddr())
			l.env.EndOp(tid, true)
			return true
		}
	}
}

// Delete removes key; it reports false if absent.
func (l *LinkedList) Delete(tid int, key uint64) bool {
	checkKey(key)
	for {
		pred, curr := l.search(tid, key)
		l.env.ReadCritical(tid, curr.addr)
		if curr.key != key {
			l.env.EndOp(tid, false)
			return false
		}
		currState := curr.state.Load()
		if currState.marked {
			continue
		}
		// Logical deletion: mark the node's state word.
		if !curr.state.CompareAndSwap(currState, &listState{next: currState.next, marked: true}) {
			continue
		}
		l.env.WriteCommit(tid, curr.stateAddr())
		// Physical unlink, best effort; search() helps otherwise.
		predState := pred.state.Load()
		if !predState.marked && predState.next == curr {
			if pred.state.CompareAndSwap(predState, &listState{next: currState.next}) {
				l.env.WriteCommit(tid, pred.stateAddr())
			}
		}
		l.env.EndOp(tid, true)
		return true
	}
}

// Contains reports membership without helping.
func (l *LinkedList) Contains(tid int, key uint64) bool {
	checkKey(key)
	curr := l.head
	l.env.ReadTraverse(tid, curr.stateAddr())
	st := curr.state.Load()
	curr = st.next
	for curr.key < key {
		l.env.ReadTraverse(tid, curr.stateAddr())
		curr = curr.state.Load().next
	}
	l.env.ReadCritical(tid, curr.addr)
	found := curr.key == key && !curr.state.Load().marked
	l.env.EndOp(tid, false)
	return found
}

func checkKey(key uint64) {
	if key == 0 || key > KeyMax {
		panic("ds: key out of range")
	}
}
