// Package suppress implements the shared suppression mechanism for the
// skipit-vet analyzers (see internal/analysis).
//
// A diagnostic is silenced by a directive comment:
//
//	//skipit:ignore <analyzer> <reason>
//
// placed either at the end of the offending line or alone on the line
// immediately above it. The reason is mandatory: a directive without one is
// itself reported as a diagnostic, so every waiver in the tree documents why
// the invariant does not apply at that site. A directive names exactly one
// analyzer and silences only that analyzer's diagnostics, and only on its
// target line — it never blankets a file or function.
//
// Every analyzer in the suite opts in by calling Apply(pass) as the first
// statement of its Run function; Apply wraps pass.Report with the filter and
// reports malformed directives that name the wrapped analyzer.
package suppress

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Prefix is the directive marker. Like //go: directives it must start the
// comment with no space after the slashes.
const Prefix = "//skipit:ignore"

// directive is one parsed //skipit:ignore comment.
type directive struct {
	pos      token.Pos // position of the comment
	analyzer string    // analyzer it names ("" if absent)
	reason   string    // justification ("" if absent)
	line     int       // line the directive appears on
	trailing bool      // shares its line with code (suppresses that line)
}

// Apply wraps pass.Report so that diagnostics on lines covered by a
// well-formed //skipit:ignore directive naming this analyzer are dropped,
// and reports directives naming this analyzer that are missing a reason.
// Call it first in every analyzer's Run.
func Apply(pass *analysis.Pass) {
	dirs := collect(pass)

	// A well-formed trailing directive covers its own line; a standalone
	// directive covers the next line.
	covered := make(map[int]bool)
	for _, d := range dirs {
		if d.analyzer != pass.Analyzer.Name || d.reason == "" {
			continue
		}
		if d.trailing {
			covered[d.line] = true
		} else {
			covered[d.line+1] = true
		}
	}

	orig := pass.Report
	pass.Report = func(diag analysis.Diagnostic) {
		if covered[pass.Fset.Position(diag.Pos).Line] {
			return
		}
		orig(diag)
	}

	// Malformed directives that name this analyzer are diagnostics in their
	// own right (and do not suppress anything, so the original finding
	// surfaces too).
	for _, d := range dirs {
		if d.analyzer != pass.Analyzer.Name || d.reason != "" {
			continue
		}
		pass.Report(analysis.Diagnostic{
			Pos:     d.pos,
			Message: "skipit:ignore directive needs a reason: //skipit:ignore " + pass.Analyzer.Name + " <why this site is exempt>",
		})
	}
}

// collect parses every skipit:ignore directive in the package's files.
func collect(pass *analysis.Pass) []directive {
	var out []directive
	for _, f := range pass.Files {
		// Record, per line, the earliest offset of any code token so that a
		// directive can be classified as trailing (code before it on the
		// line) or standalone.
		codeOn := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || !n.Pos().IsValid() {
				return true
			}
			if _, ok := n.(*ast.Comment); ok {
				return true
			}
			if _, ok := n.(*ast.CommentGroup); ok {
				return true
			}
			codeOn[pass.Fset.Position(n.Pos()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, Prefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				d := directive{
					pos:  c.Pos(),
					line: pass.Fset.Position(c.Pos()).Line,
				}
				if len(fields) > 0 {
					d.analyzer = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				// The AST walk above sees the comment's own line as code-free
				// unless a statement shares it, because comments were skipped.
				d.trailing = codeOn[d.line]
				out = append(out, d)
			}
		}
	}
	return out
}
