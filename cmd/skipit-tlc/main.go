// Command skipit-tlc fuzzes the L2 at the TileLink protocol level: randomized
// concurrent master agents drive Acquire/Release/RootRelease traffic straight
// into the L2's client ports (no cores, no L1s) while a per-address scoreboard
// checks the permission invariant, value propagation and §5.5 durability every
// cycle. Episodes compose with chaos fault schedules; failures are ddmin-shrunk
// and written as replayable .tlc.json artifacts.
//
// Usage:
//
//	skipit-tlc [-episodes N] [-seed S] [-agents N] [-ops N] [-faults N]
//	           [-addrs N] [-cycle-limit N] [-watchdog N] [-shrink-runs N]
//	           [-out DIR] [-jobs N] [-v]
//	skipit-tlc -replay FILE [-v]
//
// Every episode is a pure function of its seed: the same seed expands to the
// same script, the same interleaving, the same verdict and the same shrunk
// artifact.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"skipit/internal/tlctest"
)

func main() {
	episodes := flag.Int("episodes", 100, "number of episodes")
	seed := flag.Int64("seed", 1, "first episode seed (episode i uses seed+i)")
	agents := flag.Int("agents", 3, "concurrent master agents")
	ops := flag.Int("ops", 24, "scripted ops per agent")
	faults := flag.Int("faults", 8, "chaos faults per episode (0 disables)")
	addrs := flag.Int("addrs", 6, "distinct line addresses in the episode universe")
	cycleLimit := flag.Int64("cycle-limit", 150_000, "per-episode cycle budget")
	watchdog := flag.Int64("watchdog", 20_000, "watchdog no-progress limit (0 disables)")
	shrinkRuns := flag.Int("shrink-runs", 200, "max re-executions while shrinking a failure")
	out := flag.String("out", ".", "directory for .tlc.json repro artifacts")
	jobs := flag.Int("jobs", runtime.NumCPU(), "parallel workers")
	replay := flag.String("replay", "", "replay a .tlc.json artifact instead of fuzzing")
	parallel := flag.Int("parallel", 0, "deterministic parallel stepping per episode with N workers (0 = serial; verdicts are identical)")
	verbose := flag.Bool("v", false, "per-episode log lines")
	flag.Parse()

	if *replay != "" {
		os.Exit(replayFile(*replay, *parallel, *verbose))
	}
	os.Exit(fuzz(*episodes, *seed, *agents, *ops, *faults, *addrs,
		*cycleLimit, *watchdog, *shrinkRuns, *out, *jobs, *parallel, *verbose))
}

// fuzz runs episodes seed..seed+episodes-1 across a worker pool. Each episode
// is an independent pure function of its seed, so parallelism never changes
// results.
func fuzz(episodes int, seed int64, agents, ops, faults, addrs int,
	cycleLimit, watchdog int64, shrinkRuns int, out string, jobs, parallel int, verbose bool) int {
	if jobs < 1 {
		jobs = 1
	}
	var (
		mu       sync.Mutex // serializes logging and artifact writes
		failures int
		next     atomic.Int64
		agg      tlctest.Stats
	)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(episodes) {
					return
				}
				p := tlctest.Params{
					Seed:          seed + i,
					Agents:        agents,
					OpsPerAgent:   ops,
					Faults:        faults,
					Addrs:         addrs,
					CycleLimit:    cycleLimit,
					WatchdogLimit: watchdog,
				}
				script := tlctest.BuildScript(p)
				fail, st := tlctest.RunScriptParallel(script, parallel)
				mu.Lock()
				agg.Cycles += st.Cycles
				agg.Acquires += st.Acquires
				agg.Grants += st.Grants
				agg.Writes += st.Writes
				agg.Releases += st.Releases
				agg.Flushes += st.Flushes
				agg.ProbesAnswered += st.ProbesAnswered
				agg.ValuePrunes += st.ValuePrunes
				agg.RootReleaseRaces += st.RootReleaseRaces
				if verbose && fail == nil {
					fmt.Printf("seed %d: ok (%d cycles, %d grants, %d probes)\n",
						p.Seed, st.Cycles, st.Grants, st.ProbesAnswered)
				}
				mu.Unlock()
				if fail == nil {
					continue
				}
				shrunk, attempts := tlctest.ShrinkScript(script, fail.Kind, shrinkRuns)
				finalFail, _ := tlctest.RunScript(shrunk)
				if finalFail == nil || finalFail.Kind != fail.Kind {
					// Shrink budget ran dry on a flaky candidate; keep the
					// original script so the artifact still reproduces.
					shrunk, finalFail = script, fail
				}
				path := filepath.Join(out, fmt.Sprintf("seed-%d.tlc.json", p.Seed))
				mu.Lock()
				failures++
				if err := tlctest.WriteRepro(path, tlctest.Repro{
					Seed: p.Seed, Params: &p, Script: shrunk, Failure: finalFail,
				}); err != nil {
					log.Fatalf("seed %d: write repro: %v", p.Seed, err)
				}
				fmt.Printf("seed %d: FAIL %s: %s\n  shrunk to %d ops / %d faults after %d runs -> %s\n",
					p.Seed, fail.Kind, fail.Message,
					len(shrunk.Ops), len(shrunk.Schedule.Faults), attempts, path)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	fmt.Printf("tlc: %d episodes, %d failures; grants=%d writes=%d releases=%d flushes=%d probes=%d prunes=%d rr_races=%d\n",
		episodes, failures, agg.Grants, agg.Writes, agg.Releases, agg.Flushes,
		agg.ProbesAnswered, agg.ValuePrunes, agg.RootReleaseRaces)
	if failures > 0 {
		return 1
	}
	return 0
}

// replayFile re-executes a .tlc.json artifact and compares the outcome with
// what the artifact recorded. Exit 0 iff they agree.
func replayFile(path string, parallel int, verbose bool) int {
	rep, err := tlctest.LoadRepro(path)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	fmt.Printf("replaying %s: %d agents, %d ops, %d faults\n",
		path, rep.Script.Agents, len(rep.Script.Ops), len(rep.Script.Schedule.Faults))
	fail, st := tlctest.RunScriptParallel(rep.Script, parallel)
	switch {
	case fail == nil && rep.Failure == nil:
		fmt.Printf("ok: run clean, as recorded (%d cycles)\n", st.Cycles)
		return 0
	case fail == nil:
		fmt.Printf("MISMATCH: recorded %s, but replay ran clean\n", rep.Failure.Kind)
		return 1
	case rep.Failure == nil:
		fmt.Printf("MISMATCH: recorded clean, but replay failed: %s\n", fail.Message)
		return 1
	case fail.Kind != rep.Failure.Kind:
		fmt.Printf("MISMATCH: recorded %s, replay produced %s: %s\n",
			rep.Failure.Kind, fail.Kind, fail.Message)
		return 1
	default:
		fmt.Printf("reproduced: %s at cycle %d: %s\n", fail.Kind, fail.Cycle, fail.Message)
		if verbose && fail.Violation != nil {
			fmt.Printf("  %+v\n", *fail.Violation)
		}
		return 0
	}
}
