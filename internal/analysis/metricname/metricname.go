// Package metricname implements the skipit-vet analyzer for the metrics
// registry's naming contract. Instruments are identified by
// "component.name" keys (metrics.Key); the sweep result store, the
// regression gate and the snapshot aggregator all join on those strings, so
// they must be:
//
//   - literal: a name built with fmt.Sprintf or string concatenation cannot
//     be grepped for and defeats this analyzer's duplicate check (instance
//     prefixes like "l1[0]" are the exception — they are runtime values by
//     design, and only the name part must be literal);
//   - snake_case (dots allowed in the name part for hierarchies);
//   - unique: the registry is get-or-create, so two components registering
//     the same key silently share one instrument — each increments the
//     other's numbers. In-package duplicates are reported directly;
//     cross-package duplicates are found through package facts exported to
//     every importer (intentional sharing, like the SoC-wide "chaos.*"
//     counters, carries //skipit:ignore waivers naming the design).
package metricname

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"skipit/internal/analysis/suppress"
)

var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "check that metric registrations use literal snake_case names with no duplicate keys across packages\n\n" +
		"The registry is get-or-create: a duplicate key silently merges two components' instruments.",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{new(Registrations)},
	Run:       run,
}

// metricsPkgSuffix identifies the metrics package (suffix-matched so fixture
// trees work).
const metricsPkgSuffix = "internal/metrics"

// registrars are the Registry methods that create instruments; the first
// two string arguments form the key.
var registrars = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

var (
	// componentRE admits an optional "[N]" instance index ("l1[0]"): per-core
	// instruments share a name and differ only in the index.
	componentRE = regexp.MustCompile(`^[a-z0-9_]+(\[[0-9]+\])?$`)
	nameRE      = regexp.MustCompile(`^[a-z0-9_]+(\.[a-z0-9_]+)*$`)
)

// Registrations is the package fact carrying every metric key a package
// registers with literal component and name, so importers can detect
// cross-package collisions.
type Registrations struct {
	Keys map[string]string // "component.name" -> "file:line:col"
}

// AFact marks Registrations as an analysis fact.
func (*Registrations) AFact() {}

func (r *Registrations) String() string {
	keys := make([]string, 0, len(r.Keys))
	for k := range r.Keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return "metrics(" + strings.Join(keys, ",") + ")"
}

func run(pass *analysis.Pass) (interface{}, error) {
	suppress.Apply(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	own := make(map[string]string) // key -> position of first registration

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || !registrars[fn.Name()] || fn.Pkg() == nil {
			return true
		}
		sig := fn.Type().(*types.Signature)
		recv := sig.Recv()
		if recv == nil || !isRegistry(recv.Type()) || len(call.Args) < 2 {
			return true
		}

		compLit, compIsLit := stringLit(call.Args[0])
		nameLit, nameIsLit := stringLit(call.Args[1])

		if !nameIsLit {
			pass.Report(analysis.Diagnostic{
				Pos:     call.Args[1].Pos(),
				Message: fmt.Sprintf("metric name passed to %s must be a literal string so keys can be grepped and checked for collisions", fn.Name()),
			})
			return true
		}
		if !nameRE.MatchString(nameLit) {
			pass.Report(analysis.Diagnostic{
				Pos:     call.Args[1].Pos(),
				Message: fmt.Sprintf("metric name %q is not snake_case (want ^[a-z0-9_]+(\\.[a-z0-9_]+)*$)", nameLit),
			})
			return true
		}
		if compIsLit && !componentRE.MatchString(compLit) {
			pass.Report(analysis.Diagnostic{
				Pos:     call.Args[0].Pos(),
				Message: fmt.Sprintf("metric component %q is not snake_case (want ^[a-z0-9_]+$, optionally with an instance index like \"l1[0]\")", compLit),
			})
			return true
		}

		// Only full-literal keys participate in duplicate detection, and
		// only when the call is a registration rather than a read-through
		// (x.Counter("c","n").Value() reads an existing instrument). Test
		// files are exempt from duplicate tracking: tests re-get instruments
		// precisely to assert the get-or-create semantics.
		if !compIsLit || isReadThrough(stack) {
			return true
		}
		posn := pass.Fset.Position(call.Pos()).String()
		if strings.HasSuffix(pass.Fset.Position(call.Pos()).Filename, "_test.go") {
			return true
		}
		key := compLit + "." + nameLit
		if first, dup := own[key]; dup {
			pass.Report(analysis.Diagnostic{
				Pos:     call.Pos(),
				Message: fmt.Sprintf("metric key %q already registered at %s: the registry is get-or-create, so these sites silently share one instrument", key, first),
			})
			return true
		}
		own[key] = posn
		return true
	})

	// Cross-package collisions: our keys against every dependency's.
	for _, pf := range pass.AllPackageFacts() {
		regs, ok := pf.Fact.(*Registrations)
		if !ok || pf.Package == pass.Pkg {
			continue
		}
		for key, theirPos := range regs.Keys {
			if ourPos, clash := own[key]; clash {
				pass.Report(analysis.Diagnostic{
					Pos:     posFromString(pass, ourPos),
					Message: fmt.Sprintf("metric key %q also registered by package %s (%s): cross-package registrations share one instrument", key, pf.Package.Path(), theirPos),
				})
			}
		}
	}

	if len(own) > 0 {
		pass.ExportPackageFact(&Registrations{Keys: own})
	}
	return nil, nil
}

// isRegistry reports whether t is (a pointer to) metrics.Registry.
func isRegistry(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	p := named.Obj().Pkg().Path()
	return named.Obj().Name() == "Registry" &&
		(p == metricsPkgSuffix || strings.HasSuffix(p, "/"+metricsPkgSuffix))
}

// stringLit unwraps a basic string literal.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// isReadThrough reports whether the registrar call's result is immediately
// consumed by a method call (stack[len-1] is the CallExpr; its parent a
// SelectorExpr means x.Counter(...).Value()).
func isReadThrough(stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	_, ok := stack[len(stack)-2].(*ast.SelectorExpr)
	return ok
}

// posFromString locates an "own" position back in this package's fileset by
// re-parsing the "file:line:col" string; falls back to the package's first
// file if parsing fails (the message still carries both positions).
func posFromString(pass *analysis.Pass, posn string) token.Pos {
	// Positions recorded in `own` come from this pass's Fset, so match them
	// against the package's files.
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		prefix := tf.Name() + ":"
		if !strings.HasPrefix(posn, prefix) {
			continue
		}
		rest := strings.TrimPrefix(posn, prefix)
		parts := strings.SplitN(rest, ":", 2)
		line, err := strconv.Atoi(parts[0])
		if err != nil || line < 1 || line > tf.LineCount() {
			continue
		}
		return tf.LineStart(line)
	}
	if len(pass.Files) > 0 {
		return pass.Files[0].Pos()
	}
	return token.NoPos
}
