package sweepd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"skipit/internal/sweep"
)

// The write-ahead journal is the coordinator's crash-recovery substrate: one
// JSON line per job state transition, appended and fsynced before the
// transition is acknowledged. On restart the queue is rebuilt by replaying
// the journal against the result store. The rules that make this sound:
//
//   - "done" is journaled only after the record is durably committed to the
//     store (which itself writes atomically). A crash between store commit
//     and journal append leaves the job leased in the journal; recovery
//     requeues it, the re-run commits the identical content-addressed bytes,
//     and the second "done" line wins. Exactly one result, twice written.
//   - A torn final line (the crash interrupted the append itself) is
//     ignored: every acknowledged transition was fully written and fsynced
//     before the acknowledgment, so the torn line can only describe an
//     unacknowledged transition, which is indistinguishable from the crash
//     arriving a microsecond earlier.
//   - Leases are not durable. Replaying a "lease" with no matching terminal
//     line requeues the job at the same attempt: the lease died with the
//     coordinator, and the worker's eventual completion is handled by the
//     stale-complete path (content-addressed commit or discard).

// journal ops.
const (
	opSubmit  = "submit"
	opLease   = "lease"
	opRequeue = "requeue"
	opDone    = "done"
	opFailed  = "failed"
)

// journalEntry is one logged transition.
type journalEntry struct {
	Op string `json:"op"`
	// Job is set on submit; every other op refers to the job by ID.
	Job     *JobSpec `json:"job,omitempty"`
	ID      string   `json:"id,omitempty"`
	Worker  string   `json:"worker,omitempty"`
	Attempt int      `json:"attempt,omitempty"`
	// Reason annotates requeues (a Failure code such as FailLeaseExpired).
	Reason string `json:"reason,omitempty"`
	// Record is carried on done so recovery does not depend on the store
	// having survived (the store is still the canonical figure output).
	Record  *sweep.Record `json:"record,omitempty"`
	Failure *Failure      `json:"failure,omitempty"`
	// Cached marks a done entry that came from a store hit at submit time.
	Cached bool `json:"cached,omitempty"`
}

// journal is an append-only JSONL file.
type journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// openJournal opens (creating if needed) the journal at path and returns the
// previously recorded entries. A torn final line is tolerated and dropped;
// any earlier malformed line means real corruption and fails the open.
func openJournal(path string) (*journal, []journalEntry, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("sweepd: opening journal %s: %w", path, err)
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("sweepd: reading journal %s: %w", path, err)
	}
	var entries []journalEntry
	var off int64 // on-disk end of the last complete entry
	for pos := 0; pos < len(raw); {
		nl := bytes.IndexByte(raw[pos:], '\n')
		if nl < 0 {
			// No terminating newline: the append was interrupted mid-line.
			// Whatever the bytes say, the transition was never acknowledged.
			break
		}
		line := raw[pos : pos+nl]
		pos += nl + 1
		if len(line) == 0 {
			off = int64(pos)
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// A terminated-but-malformed line is real corruption only if
			// complete entries follow it; as the effective tail it is torn.
			if rest := bytes.TrimSpace(raw[pos:]); len(rest) != 0 {
				f.Close()
				return nil, nil, fmt.Errorf("sweepd: journal %s: malformed line before end of file", path)
			}
			break
		}
		entries = append(entries, e)
		off = int64(pos)
	}
	// Position the write cursor after the last complete entry, truncating a
	// torn tail so the next append starts a clean line.
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("sweepd: truncating journal %s: %w", path, err)
	}
	if _, err := f.Seek(off, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("sweepd: seeking journal %s: %w", path, err)
	}
	return &journal{f: f, path: path}, entries, nil
}

// append logs one entry durably (write + fsync) before returning.
func (j *journal) append(e journalEntry) error {
	if j == nil {
		return nil
	}
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("sweepd: journal entry: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock() //skipit:ignore lockorder the journal lock exists precisely to serialize appends to the WAL file; I/O under it is the point
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("sweepd: appending journal %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sweepd: syncing journal %s: %w", j.path, err)
	}
	return nil
}

func (j *journal) close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock() //skipit:ignore lockorder close must exclude in-flight appends on the same file handle
	defer j.mu.Unlock()
	return j.f.Close()
}
