package core

import (
	"fmt"

	"skipit/internal/metrics"
	"skipit/internal/tilelink"
	"skipit/internal/trace"
)

// FlushUnit is the microarchitectural unit of §5 (Fig. 6): a flush queue
// buffering committed CBO.X requests, a set of FSHRs executing them
// asynchronously, and a flush counter that gates fences. With Skip It
// enabled it additionally maintains the §6 skip bit and drops redundant
// writebacks before they are enqueued.
//
// The embedding data cache drives the unit once per cycle via Tick, routes
// RootReleaseAck messages to OnRootReleaseAck, and consults the conflict
// predicates (LoadConflict, StoreConflict, VictimBlocked) when handling
// subsequent requests to lines with writebacks in flight (§5.3, §5.4).
//
// In parallel simulation the unit lives inside its L1 and is core-shard
// state.
//
//skipit:shard-owned core
type FlushUnit struct {
	cfg   Config
	ports CachePorts
	tr    trace.Tracer
	rec   *trace.Rec // flight recorder ring; nil records nothing
	name  string

	queue   []flushReq
	fshrs   []fshr
	nextRR  int // round-robin FSHR allocation pointer (§5.2)
	counter int // flush counter (§5.2): pending CBO.X requests

	ctr   counters
	chaos Chaos // nil unless a fault schedule is armed
}

// counters holds the unit's registry-backed instruments. Increment sites use
// these directly; Stats() reads them back into the legacy struct view.
type counters struct {
	offered, enqueued, skipDropped *metrics.Counter
	coalesced, coalescedCross      *metrics.Counter
	nackQueueFull, nackFSHRBusy    *metrics.Counter
	rootReleases, dataWritebacks   *metrics.Counter
	probeInvals, evictInvals       *metrics.Counter
	skipBitsSet                    *metrics.Counter
	stallWBRdy, stallProbeRdy      *metrics.Counter
	stallFSHRFull, stallSameLine   *metrics.Counter
	stallLinkBusy                  *metrics.Counter
	queueDepth, fshrOccupancy      *metrics.Gauge
	flushLatency                   *metrics.Histogram
}

func newCounters(reg *metrics.Registry, name string) counters {
	return counters{
		offered:        reg.Counter(name, "offered"),
		enqueued:       reg.Counter(name, "enqueued"),
		skipDropped:    reg.Counter(name, "skip_dropped"),
		coalesced:      reg.Counter(name, "coalesced"),
		coalescedCross: reg.Counter(name, "coalesced_cross"),
		nackQueueFull:  reg.Counter(name, "nack_queue_full"),
		nackFSHRBusy:   reg.Counter(name, "nack_fshr_busy"),
		rootReleases:   reg.Counter(name, "root_releases"),
		dataWritebacks: reg.Counter(name, "data_writebacks"),
		probeInvals:    reg.Counter(name, "probe_invals"),
		evictInvals:    reg.Counter(name, "evict_invals"),
		skipBitsSet:    reg.Counter(name, "skip_bits_set"),
		stallWBRdy:     reg.Counter(name, "stall_wb_rdy_cycles"),
		stallProbeRdy:  reg.Counter(name, "stall_probe_rdy_cycles"),
		stallFSHRFull:  reg.Counter(name, "stall_fshr_full_cycles"),
		stallSameLine:  reg.Counter(name, "stall_same_line_cycles"),
		stallLinkBusy:  reg.Counter(name, "stall_link_busy_cycles"),
		queueDepth:     reg.Gauge(name, "queue_depth"),
		fshrOccupancy:  reg.Gauge(name, "fshr_occupancy"),
		flushLatency:   reg.Histogram(name, "flush_latency_cycles", nil),
	}
}

// NewFlushUnit builds a flush unit over the given cache ports.
func NewFlushUnit(cfg Config, ports CachePorts) *FlushUnit {
	if cfg.QueueDepth <= 0 || cfg.NumFSHRs <= 0 {
		panic("core: flush unit needs positive queue depth and FSHR count")
	}
	if cfg.LineBytes == 0 {
		panic("core: zero line size")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if cfg.Txns == nil {
		cfg.Txns = &trace.TxnSeq{}
	}
	u := &FlushUnit{
		cfg:   cfg,
		ports: ports,
		fshrs: make([]fshr, cfg.NumFSHRs),
		name:  fmt.Sprintf("flush[%d]", cfg.Source),
	}
	u.ctr = newCounters(reg, u.name)
	return u
}

// Config returns the unit's configuration.
func (u *FlushUnit) Config() Config { return u.cfg }

// SetTracer attaches an event tracer (nil disables tracing).
func (u *FlushUnit) SetTracer(t trace.Tracer) { u.tr = t }

// SetRecorder attaches a flight-recorder ring (nil disables recording).
func (u *FlushUnit) SetRecorder(r *trace.Rec) { u.rec = r }

// Stats returns the activity counters as one struct, read back from the
// metrics registry (thin view; see package metrics).
func (u *FlushUnit) Stats() Stats {
	return Stats{
		Offered:        u.ctr.offered.Value(),
		Enqueued:       u.ctr.enqueued.Value(),
		SkipDropped:    u.ctr.skipDropped.Value(),
		Coalesced:      u.ctr.coalesced.Value(),
		CoalescedCross: u.ctr.coalescedCross.Value(),
		NackQueueFull:  u.ctr.nackQueueFull.Value(),
		NackFSHRBusy:   u.ctr.nackFSHRBusy.Value(),
		RootReleases:   u.ctr.rootReleases.Value(),
		DataWritebacks: u.ctr.dataWritebacks.Value(),
		ProbeInvals:    u.ctr.probeInvals.Value(),
		EvictInvals:    u.ctr.evictInvals.Value(),
		SkipBitsSet:    u.ctr.skipBitsSet.Value(),
		StallWBRdy:     u.ctr.stallWBRdy.Value(),
		StallProbeRdy:  u.ctr.stallProbeRdy.Value(),
		StallFSHRFull:  u.ctr.stallFSHRFull.Value(),
		StallSameLine:  u.ctr.stallSameLine.Value(),
		StallLinkBusy:  u.ctr.stallLinkBusy.Value(),
	}
}

// FlushLatency exposes the per-request completion-latency histogram
// (FSHR allocation to RootReleaseAck), for P95/P99 reporting.
func (u *FlushUnit) FlushLatency() *metrics.Histogram { return u.ctr.flushLatency }

func (u *FlushUnit) lineAddr(addr uint64) uint64 { return addr &^ (u.cfg.LineBytes - 1) }

// Offer presents a committed CBO.X request to the flush unit together with
// the metadata snapshot the data cache read for it. The result tells the
// data cache whether the instruction is buffered (complete for the LSU),
// completed immediately, or must be nacked and retried.
func (u *FlushUnit) Offer(now int64, addr uint64, clean bool, meta LineMeta) OfferResult {
	addr = u.lineAddr(addr)
	u.ctr.offered.Inc()

	// §6.1: with Skip It, a request that hits a clean line whose skip bit
	// is set is provably redundant — the line has no dirty data anywhere
	// in the hierarchy — and is dropped before entering the queue.
	if u.cfg.SkipIt && meta.Hit && !meta.Dirty && meta.Skip {
		u.ctr.skipDropped.Inc()
		trace.Emit(u.tr, now, u.name, "cbo-drop", addr, "redundant: skip bit set (§6.1)")
		// Skip-audit: the primary §6.1 elimination — the CBO never becomes
		// a transaction, so no txn id exists for it.
		u.rec.Record(now, trace.RecSkipAudit, trace.CauseSkipBit, 0, addr, 0)
		return OfferDropped
	}

	// §5.3: a CBO.X may coalesce with a pending same-kind request to the
	// same line, because the intervening nack rules guarantee the line
	// state is unchanged between the two. Requests already being executed
	// by an FSHR have begun mutating metadata, so only queued entries are
	// eligible.
	if u.cfg.Coalescing {
		for i := range u.queue {
			q := &u.queue[i]
			if q.addr != addr {
				continue
			}
			if q.isClean == clean {
				u.ctr.coalesced.Inc()
				if u.tr != nil {
					trace.Emit(u.tr, now, u.name, "cbo-coalesce", addr, "merged with queued "+q.kind())
				}
				return OfferDropped
			}
			if !u.cfg.CoalesceCrossKind {
				continue
			}
			if clean && !q.isClean {
				// CBO.CLEAN into a queued CBO.FLUSH: the flush
				// already invalidates and writes back everything
				// the clean would.
				u.ctr.coalescedCross.Inc()
				return OfferDropped
			}
			// CBO.FLUSH into a queued CBO.CLEAN: upgrade the entry
			// in place. The snapshot bits remain valid — the line
			// has been frozen by the §5.3 nack rules since the
			// clean was enqueued — and the FSHR will now invalidate
			// instead of just clearing the dirty bit.
			q.isClean = false
			u.ctr.coalescedCross.Inc()
			return OfferDropped
		}
	}

	// A request to a line an FSHR is actively handling behaves like the
	// other dependent STQ requests of §5.3: nack and let the LSU retry.
	if u.fshrFor(addr) != nil {
		u.ctr.nackFSHRBusy.Inc()
		return OfferNack
	}

	if len(u.queue) >= u.cfg.QueueDepth {
		u.ctr.nackQueueFull.Inc()
		return OfferNack
	}

	req := flushReq{
		addr:    addr,
		isHit:   meta.Hit,
		isDirty: meta.Hit && meta.Dirty,
		isClean: clean,
		txn:     u.cfg.Txns.Next(),
	}
	u.queue = append(u.queue, req) //skipit:ignore hotalloc CBO queue is bounded by QueueDepth backpressure; append reuses its backing after warmup
	u.counter++
	u.ctr.enqueued.Inc()
	u.rec.Record(now, trace.RecCboEnqueue, trace.CauseNone, req.txn, addr, uint64(len(u.queue)))
	if u.tr != nil {
		trace.EmitTxn(u.tr, now, u.name, "cbo-enqueue", req.txn, addr,
			fmt.Sprintf("%s hit=%v dirty=%v depth=%d", req.kind(), req.isHit, req.isDirty, len(u.queue))) //skipit:ignore hotalloc trace formatting runs only with a tracer attached; untraced runs never reach it
	}
	return OfferAccepted
}

// Flushing mirrors the §5.3 "flushing" output: true while any CBO.X request
// is pending in the queue or in an FSHR. Fences may commit only while it is
// low.
func (u *FlushUnit) Flushing() bool { return u.counter > 0 }

// PendingCount returns the flush counter value, for assertions.
func (u *FlushUnit) PendingCount() int { return u.counter }

// FlushRdy mirrors the §5.4.1 flush_rdy output: low from FSHR allocation
// until the FSHR has written metadata and released the line to L2 (i.e.
// reached root_release_ack). The probe unit must not handle probes and the
// MSHRs must not evict lines while it is low.
func (u *FlushUnit) FlushRdy() bool {
	for i := range u.fshrs {
		if u.fshrs[i].busyPreAck() {
			return false
		}
	}
	return true
}

// Tick advances the unit by one cycle: it first steps every FSHR, then — if
// the probe unit and writeback unit are quiescent (probe_rdy and wb_rdy
// high, §5.4) — dequeues at most one request into a free FSHR, allocated
// round-robin.
func (u *FlushUnit) Tick(now int64, probeRdy, wbRdy bool) {
	for i := range u.fshrs {
		u.stepFSHR(now, &u.fshrs[i])
	}

	u.ctr.queueDepth.Set(int64(len(u.queue)))
	u.ctr.fshrOccupancy.Set(int64(u.ActiveFSHRs()))

	if len(u.queue) == 0 {
		return
	}
	// Stall attribution (§5.4): record why the queue head cannot dequeue
	// this cycle. wb_rdy takes priority in the report, matching the
	// arbitration order of Fig. 8.
	if !wbRdy {
		u.ctr.stallWBRdy.Inc()
		return
	}
	if !probeRdy {
		u.ctr.stallProbeRdy.Inc()
		return
	}
	// An FSHR may already be handling this line (it stays busy until the
	// ack arrives); a second concurrent handler would race on metadata.
	head := u.queue[0]
	if u.fshrFor(head.addr) != nil {
		u.ctr.stallSameLine.Inc()
		return
	}
	if u.fshrQuotaFull(now) {
		u.ctr.stallFSHRFull.Inc()
		return
	}
	for n := 0; n < len(u.fshrs); n++ {
		i := (u.nextRR + n) % len(u.fshrs)
		if u.fshrs[i].active() {
			continue
		}
		u.nextRR = (i + 1) % len(u.fshrs)
		copy(u.queue, u.queue[1:])
		u.queue = u.queue[:len(u.queue)-1]
		u.fshrs[i].allocate(head, now)
		u.rec.Record(now, trace.RecFSHRAlloc, trace.CauseNone, head.txn, head.addr, uint64(i))
		if u.tr != nil {
			trace.EmitTxn(u.tr, now, u.name, "fshr-alloc", head.txn, head.addr,
				fmt.Sprintf("fshr=%d %s hit=%v dirty=%v", i, head.kind(), head.isHit, head.isDirty)) //skipit:ignore hotalloc trace formatting runs only with a tracer attached; untraced runs never reach it
		}
		// Give the freshly allocated FSHR its first state's work this
		// cycle, mirroring hardware where allocation and the first
		// state action share the dequeue cycle boundary.
		u.stepFSHR(now, &u.fshrs[i])
		return
	}
	u.ctr.stallFSHRFull.Inc()
}

// NextEvent reports the earliest future cycle at which the flush unit can
// change state without external input, for the fast-forward clock. A
// non-empty queue runs dequeue arbitration (and its stall-attribution
// counters) every cycle; any FSHR that has not yet sent its RootRelease acts
// every cycle too. FSHRs parked in root_release_ack are woken by a TL-D
// delivery, which the link itself reports as an event.
//
//skipit:hotpath
func (u *FlushUnit) NextEvent(now int64) int64 {
	if len(u.queue) > 0 {
		return now + 1
	}
	for i := range u.fshrs {
		switch u.fshrs[i].state {
		case FSHRInvalid, FSHRRootReleaseAck:
			// Idle, or waiting on the D channel.
		default:
			return now + 1
		}
	}
	return tilelink.NoEvent
}

// OnRootReleaseAck routes a RootReleaseAck from TL-D to the FSHR waiting on
// that line. On a completed CBO.CLEAN the line — if still resident and
// clean — is now persisted end-to-end, so with Skip It the skip bit is set;
// this is the hardware analogue of FliT marking a location flushed.
func (u *FlushUnit) OnRootReleaseAck(now int64, addr uint64) {
	addr = u.lineAddr(addr)
	for i := range u.fshrs {
		f := &u.fshrs[i]
		if f.state != FSHRRootReleaseAck || f.req.addr != addr {
			continue
		}
		if u.cfg.SkipIt && f.req.isClean {
			if m := u.ports.MetaLineState(addr); m.Hit && !m.Dirty {
				u.ports.MetaSetSkip(addr, true)
				u.ctr.skipBitsSet.Inc()
			}
		}
		u.rec.Record(now, trace.RecFSHRAck, trace.CauseNone, f.req.txn, addr, uint64(now-f.allocAt))
		if u.tr != nil {
			trace.EmitTxn(u.tr, now, u.name, "fshr-ack", f.req.txn, addr, f.req.kind()+" complete")
		}
		u.ctr.flushLatency.Observe(uint64(now - f.allocAt))
		f.state = FSHRInvalid
		// The FSHR owned its buffer through the whole writeback (loads
		// forwarded from it, §5.3); its transaction retires here, so the
		// buffer is recycled here and nowhere else.
		u.cfg.Pool.Put(f.buffer)
		f.buffer = nil
		f.bufferFilled = false
		u.counter--
		if u.counter < 0 {
			panic("core: flush counter underflow")
		}
		return
	}
	panic(fmt.Sprintf("core: RootReleaseAck for %#x with no waiting FSHR", addr))
}

// ProbeInvalidate implements the §5.4.1 probe_invalidate input: a coherence
// probe that downgrades the line's permissions updates the snapshot bits of
// matching queued requests so they execute with valid metadata. A probe to
// None removes the line (hit and dirty cleared); a probe to Branch extracts
// dirty data but keeps a readable copy (dirty cleared).
func (u *FlushUnit) ProbeInvalidate(addr uint64, cap tilelink.Cap) {
	addr = u.lineAddr(addr)
	for i := range u.queue {
		q := &u.queue[i]
		if q.addr != addr {
			continue
		}
		switch cap {
		case tilelink.CapToN:
			if q.isHit || q.isDirty {
				u.ctr.probeInvals.Inc()
			}
			q.isHit = false
			q.isDirty = false
		case tilelink.CapToB:
			if q.isDirty {
				u.ctr.probeInvals.Inc()
			}
			q.isDirty = false
		}
	}
}

// EvictInvalidate implements the §5.4.2 counterpart for cache-line eviction:
// the writeback unit releases the line to L2, so queued requests for it no
// longer hit.
func (u *FlushUnit) EvictInvalidate(addr uint64) {
	addr = u.lineAddr(addr)
	for i := range u.queue {
		q := &u.queue[i]
		if q.addr != addr {
			continue
		}
		if q.isHit || q.isDirty {
			u.ctr.evictInvals.Inc()
		}
		q.isHit = false
		q.isDirty = false
	}
}

// LoadConflict implements the §5.3 load rules for a load that *missed* in
// the L1. If an FSHR handling the same line has filled its data buffer, the
// data is forwarded to the load. If an FSHR is handling the line without a
// filled buffer, the load must be nacked. Entries that are only queued never
// conflict with loads: a load hit leaves metadata untouched, and a load miss
// cannot alias a queued hit entry.
func (u *FlushUnit) LoadConflict(addr uint64) (forward []byte, nack bool) {
	f := u.fshrFor(addr)
	if f == nil {
		return nil, false
	}
	if f.bufferFilled {
		// The returned slice aliases the FSHR's buffer: the caller reads
		// the word it needs in the same cycle and must not retain the
		// slice (the buffer is recycled at the RootReleaseAck).
		return f.buffer, false
	}
	return nil, true
}

// StoreConflict implements the §5.3 store rules: a store to a line with a
// pending writeback is nacked unless (1) an FSHR is allocated for the line,
// (2) it is executing a CBO.CLEAN, and (3) the line was not dirty or the
// FSHR has already captured the dirty data in its buffer. Queued (not yet
// executing) entries always nack the store, so their snapshot metadata stays
// valid.
func (u *FlushUnit) StoreConflict(addr uint64) (nack bool) {
	addr = u.lineAddr(addr)
	for _, q := range u.queue {
		if q.addr == addr {
			return true
		}
	}
	f := u.fshrFor(addr)
	if f == nil {
		return false
	}
	if !f.req.isClean {
		return true
	}
	if f.req.isDirty && !f.bufferFilled {
		return true
	}
	return false
}

// ActiveOn reports whether the unit holds any request for addr's line, in
// the queue or in an FSHR. The system invariant checker uses it: a stale
// set skip bit on a clean line whose writeback is still in flight is the
// one sanctioned exception to the §6.2 equivalence.
func (u *FlushUnit) ActiveOn(addr uint64) bool {
	addr = u.lineAddr(addr)
	if u.fshrFor(addr) != nil {
		return true
	}
	for _, q := range u.queue {
		if q.addr == addr {
			return true
		}
	}
	return false
}

// QueuedConflict reports whether a request for addr's line is pending in the
// flush queue. The data cache nacks load misses against such lines: the miss
// would install the line and invalidate the queued request's metadata
// snapshot, which §5.3 requires to stay unmodified by the same core.
func (u *FlushUnit) QueuedConflict(addr uint64) bool {
	addr = u.lineAddr(addr)
	for _, q := range u.queue {
		if q.addr == addr {
			return true
		}
	}
	return false
}

// VictimBlocked reports whether the MSHRs must not evict the given line
// because the flush unit has a pending request for it. FSHR-active lines are
// covered by FlushRdy; queued entries are protected here so the eviction's
// EvictInvalidate and the dequeue cannot race within a cycle.
func (u *FlushUnit) VictimBlocked(addr uint64) bool {
	addr = u.lineAddr(addr)
	for _, q := range u.queue {
		if q.addr == addr {
			return true
		}
	}
	return u.fshrFor(addr) != nil
}

// QueueLen returns the current flush queue occupancy.
func (u *FlushUnit) QueueLen() int { return len(u.queue) }

// ActiveFSHRs returns the number of FSHRs holding a request.
func (u *FlushUnit) ActiveFSHRs() int {
	n := 0
	for i := range u.fshrs {
		if u.fshrs[i].active() {
			n++
		}
	}
	return n
}

// FSHRStates returns a snapshot of all FSHR states, for tests and tracing.
func (u *FlushUnit) FSHRStates() []FSHRState {
	out := make([]FSHRState, len(u.fshrs))
	for i := range u.fshrs {
		out[i] = u.fshrs[i].state
	}
	return out
}

// Reset drops all state, e.g. on simulated crash.
func (u *FlushUnit) Reset() {
	u.queue = u.queue[:0]
	for i := range u.fshrs {
		u.fshrs[i] = fshr{}
	}
	u.counter = 0
	u.nextRR = 0
}

func (u *FlushUnit) fshrFor(addr uint64) *fshr {
	addr = u.lineAddr(addr)
	for i := range u.fshrs {
		if u.fshrs[i].active() && u.fshrs[i].req.addr == addr {
			return &u.fshrs[i]
		}
	}
	return nil
}
