// Command skipit-bench regenerates every table and figure of the paper's
// evaluation (§7) through the internal/sweep orchestrator: each figure is
// decomposed into independent, fingerprinted jobs that run on a bounded
// worker pool and land in a content-addressed result store. See
// EXPERIMENTS.md for the side-by-side comparison with the published results
// and README.md ("Regenerating the figures") for the sweep workflow.
//
// Usage:
//
//	skipit-bench [-fig 9|10|...|16|ablations|all | comma list, e.g. -fig 9,13]
//	             [-quick] [-csv] [-jobs N] [-out DIR] [-force]
//	             [-baseline FILE] [-gate PCT] [-metrics-dir DIR] [-http ADDR]
//	             [-fleet URL]
//
// -fleet URL submits the sweep to a skipit-sweepd coordinator instead of
// running it in process; if the coordinator is unreachable (at submit or
// mid-run) the remaining jobs transparently downgrade to the local runner.
// Output is byte-identical either way. The workers must be built from the
// same tree with the same -quick setting — drifted builds refuse jobs by
// fingerprint. See README.md ("Distributed sweeps").
//
// -quick shrinks sweep sizes and operation counts so the full set completes
// in well under a minute; -csv emits machine-readable rows (figure,series,
// x,y) for plotting instead of the human-readable tables.
//
// -jobs N runs up to N measurements concurrently (default GOMAXPROCS); every
// measurement owns its whole simulated system, so results are bit-identical
// to -jobs 1. -out DIR maintains a result store (one BENCH_<group>.json per
// figure plus a combined BENCH_quick.json/BENCH_full.json): points whose
// config fingerprint already matches a stored record are skipped, -force
// re-measures everything. -baseline FILE compares the run against a stored
// baseline and -gate PCT (default 10) fails the process on cycle-count
// regressions beyond the tolerance — or on fingerprint drift, which means
// the baseline needs refreshing.
//
// -metrics-dir writes one <group>.metrics.json sidecar per cycle-accurate
// figure (9-13, ablations) holding the labeled telemetry snapshot of every
// measurement run, so figure-level latencies can be cross-examined against
// hardware counters without re-running.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"

	"skipit/internal/bench"
	"skipit/internal/introspect"
	"skipit/internal/metrics"
	"skipit/internal/sweep"
	"skipit/internal/sweepd"
)

// onOff is a boolean flag.Value that also accepts the spellings on/off.
type onOff bool

func (o *onOff) String() string {
	if bool(*o) {
		return "on"
	}
	return "off"
}

func (o *onOff) Set(s string) error {
	switch strings.ToLower(s) {
	case "on":
		*o = true
	case "off":
		*o = false
	default:
		v, err := strconv.ParseBool(s)
		if err != nil {
			return fmt.Errorf("invalid value %q (want on or off)", s)
		}
		*o = onOff(v)
	}
	return nil
}

func (o *onOff) IsBoolFlag() bool { return true }

func main() {
	os.Exit(run())
}

func run() int {
	fig := flag.String("fig", "all", "figures to regenerate: 9..16, ablations, all, or a comma list (e.g. 9,13)")
	quick := flag.Bool("quick", false, "reduced sweeps for a fast pass")
	csv := flag.Bool("csv", false, "emit figure,series,x,y rows for plotting")
	jobs := flag.Int("jobs", 0, "max concurrent measurements (0 = GOMAXPROCS)")
	out := flag.String("out", "", "result-store directory (skip already-measured points, write BENCH_*.json)")
	force := flag.Bool("force", false, "re-measure every point even on a result-store hit")
	baseline := flag.String("baseline", "", "baseline store file to gate against")
	gate := flag.Float64("gate", 10, "regression tolerance in percent (with -baseline)")
	metricsDir := flag.String("metrics-dir", "", "write per-figure metrics sidecar JSON files into this directory")
	httpAddr := flag.String("http", "", "serve live sweep introspection on this address (e.g. localhost:6060; empty disables)")
	fleetURL := flag.String("fleet", "", "run the sweep through a skipit-sweepd coordinator at this base URL (e.g. http://127.0.0.1:7070); falls back in process if unreachable")
	fastForward := onOff(true)
	flag.Var(&fastForward, "fast-forward", "next-event clock: on skips provably idle cycles, off single-steps (results are identical)")
	parallel := flag.Int("parallel", 0, "deterministic parallel stepping with N workers per measurement (0 = serial; measured cycles are bit-identical)")
	flag.Parse()

	bench.FastForward = bool(fastForward)
	bench.Parallel = *parallel

	if *quick {
		bench.SetQuick()
	}

	// Resolve the -fig selection against the known tokens.
	byToken := map[string]bench.Figure{}
	for _, f := range bench.Figures() {
		byToken[f.Token] = f
	}
	want := map[string]bool{}
	for _, tok := range strings.Split(*fig, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "all" {
			want["all"] = true
			continue
		}
		if _, ok := byToken[tok]; !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q (want 9..16, ablations, all, or a comma list)\n", tok)
			return 2
		}
		want[tok] = true
	}

	var selected []bench.Figure
	var allJobs []sweep.Job
	for _, f := range bench.Figures() {
		if !want["all"] && !want[f.Token] {
			continue
		}
		selected = append(selected, f)
		allJobs = append(allJobs, f.Build(*quick)...)
	}

	var store *sweep.Store
	if *out != "" {
		var err error
		if store, err = sweep.Open(*out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if *metricsDir != "" {
		if err := os.MkdirAll(*metricsDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	runner := sweep.Runner{
		Workers:       *jobs,
		Store:         store,
		Force:         *force,
		WithSnapshots: *metricsDir != "",
	}
	if *httpAddr != "" {
		srv, err := introspect.New(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer srv.Close()
		runner.Progress = sweepPublisher(srv, len(allJobs))
		fmt.Fprintf(os.Stderr, "introspection server on http://%s (/metrics /snapshot /events)\n", srv.Addr())
	}
	var results []sweep.JobResult
	if *fleetURL != "" {
		// Distributed mode: submit the sweep to a skipit-sweepd coordinator.
		// The in-process runner stays wired up as the degradation path — a
		// dead fleet costs wall time, never results. Records are
		// deterministic and land in the local store in submission order, so
		// the BENCH_*.json output is byte-identical to an in-process run.
		if *metricsDir != "" {
			fmt.Fprintln(os.Stderr, "note: -metrics-dir sidecars only cover jobs that run in process; fleet workers return records, not snapshots")
		}
		fleet := sweepd.Fleet{
			Client:   sweepd.NewClient(*fleetURL),
			Fallback: runner,
			Store:    store,
			Force:    *force,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		}
		results = fleet.Run(allJobs)
	} else {
		results = runner.Run(allJobs)
	}

	exit := 0
	if *csv {
		fmt.Println("figure,series,x,y")
	}
	byGroup := map[string][]sweep.JobResult{}
	for _, res := range results {
		byGroup[res.Group] = append(byGroup[res.Group], res)
	}
	for _, f := range selected {
		group := byGroup[f.Group]
		if *csv {
			for _, res := range group {
				if res.Err != nil {
					continue
				}
				r := res.Record
				if f.Mops {
					fmt.Printf("%s,%s,%s,%.4f\n", f.Token, r.Series, r.X, r.Derived["mops"])
				} else {
					fmt.Printf("%s,%s,%s,%.0f\n", f.Token, r.Series, r.X, r.Cycles)
				}
			}
		} else {
			fmt.Printf("\n== %s\n", f.Title)
			if f.Note != "" {
				fmt.Println(f.Note)
			}
			for _, res := range group {
				if res.Err != nil {
					continue
				}
				fmt.Println("  " + renderRecord(f, res))
			}
		}
		for _, res := range group {
			if res.Err != nil {
				fmt.Fprintln(os.Stderr, res.Err)
				exit = 1
			}
		}
		if *metricsDir != "" {
			if err := writeSidecar(*metricsDir, f.Group, group); err != nil {
				// A failed sidecar write must not kill a half-finished
				// sweep: report it, finish the run, exit nonzero.
				fmt.Fprintln(os.Stderr, err)
				exit = 1
			}
		}
	}

	records := sweep.Records(results)
	if store != nil {
		mode := "full"
		if *quick {
			mode = "quick"
		}
		combined := filepath.Join(store.Dir(), sweep.FileName(mode))
		if err := store.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
		} else if err := sweep.WriteFile(combined, sweep.File{Group: mode, Records: records}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
		}
	}

	if *baseline != "" {
		base, err := sweep.LoadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		cmp := sweep.Compare(base.Records, records, *gate)
		fmt.Printf("\n== %s vs %s\n", cmp, *baseline)
		if !cmp.OK() {
			fmt.Fprintln(os.Stderr, "regression gate FAILED (intentional perf changes must refresh the baseline; see README)")
			return 1
		}
		fmt.Println("regression gate passed")
	}
	return exit
}

// sweepPublisher bridges the runner's progress callback onto the
// introspection server: every job transition goes out as an SSE "sweep"
// event, and a registry of sweep-level counters is published as a fresh
// snapshot so /metrics and /snapshot track completion live. The callback
// runs on worker goroutines; the counters are atomic and PublishSnapshot is
// safe for concurrent use.
func sweepPublisher(srv *introspect.Server, total int) func(sweep.ProgressEvent) {
	reg := metrics.NewRegistry()
	reg.Gauge("sweep", "jobs_total").Set(int64(total))
	var published atomic.Int64
	return func(ev sweep.ProgressEvent) {
		switch ev.State {
		case "done":
			reg.Counter("sweep", "jobs_done").Inc()
		case "cached":
			reg.Counter("sweep", "jobs_cached").Inc()
		case "failed":
			reg.Counter("sweep", "jobs_failed").Inc()
		case "running":
			reg.Gauge("sweep", "jobs_running").Add(1)
		}
		if ev.State == "done" || ev.State == "failed" {
			reg.Gauge("sweep", "jobs_running").Add(-1)
		}
		srv.PublishEvent("sweep", ev)
		srv.PublishSnapshot(reg.Snapshot(published.Add(1)))
	}
}

// renderRecord formats one human-readable result line.
func renderRecord(f bench.Figure, res sweep.JobResult) string {
	r := res.Record
	cached := ""
	if res.Cached {
		cached = "  [store]"
	}
	if f.Mops {
		return fmt.Sprintf("%-28s %-16s %10.3f Mops/s%s", r.Series, r.X, r.Derived["mops"], cached)
	}
	line := fmt.Sprintf("%-24s size=%-8s %12.0f cycles", r.Series, r.X, r.Cycles)
	if r.Reps > 1 {
		line += fmt.Sprintf(" (sigma %.1f)", r.Sigma)
	}
	return line + cached
}

// writeSidecar writes DIR/<group>.metrics.json with every labeled snapshot
// the group's jobs emitted, in submission order. Cached jobs re-measured
// nothing, so they contribute no snapshots.
func writeSidecar(dir, group string, results []sweep.JobResult) (err error) {
	var snaps []sweep.LabeledSnapshot
	for _, res := range results {
		snaps = append(snaps, res.Snaps...)
	}
	if len(snaps) == 0 {
		return nil
	}
	path := filepath.Join(dir, group+".metrics.json")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sidecar %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("sidecar %s: %w", path, cerr)
		}
	}()
	if err := json.NewEncoder(f).Encode(snaps); err != nil {
		return fmt.Errorf("sidecar %s: %w", path, err)
	}
	return nil
}
