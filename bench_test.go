package skipit

// Benchmark harness: one testing.B target per table/figure of the paper's
// evaluation (§7). Each benchmark runs a reduced but shape-preserving subset
// of its figure's sweep and reports the headline quantity as custom metrics;
// cmd/skipit-bench regenerates the full figures as printed series.
//
//	go test -bench=. -benchmem
//
// Paper-vs-measured numbers are recorded in EXPERIMENTS.md.

import (
	"testing"

	"skipit/internal/bench"
	"skipit/internal/commercial"
	"skipit/internal/ds"
	"skipit/internal/persist"
)

// BenchmarkFig09WritebackScaling reproduces Figure 9's anchor points:
// single-line CBO.X latency (paper: ~100 cycles) and the full 32 KiB flush
// at 1 and 8 threads (paper: 7460 cycles, 7.2x faster with 8 threads).
func BenchmarkFig09WritebackScaling(b *testing.B) {
	saved := bench.Reps
	bench.Reps = 1
	defer func() { bench.Reps = saved }()
	savedSizes := bench.Sizes
	bench.Sizes = []uint64{64, 32768}
	defer func() { bench.Sizes = savedSizes }()
	savedThreads := bench.ThreadCounts
	bench.ThreadCounts = []int{1, 8}
	defer func() { bench.ThreadCounts = savedThreads }()

	var rows []bench.MicroRow
	for i := 0; i < b.N; i++ {
		rows = bench.Fig9(nil, false)
	}
	metric := map[string]float64{}
	for _, r := range rows {
		switch {
		case r.Size == 64 && r.Threads == 1:
			metric["cycles/line-1T"] = r.Cycles
		case r.Size == 32768 && r.Threads == 1:
			metric["cycles/32KiB-1T"] = r.Cycles
		case r.Size == 32768 && r.Threads == 8:
			metric["cycles/32KiB-8T"] = r.Cycles
		}
	}
	for k, v := range metric {
		b.ReportMetric(v, k)
	}
	if metric["cycles/32KiB-8T"] > 0 {
		b.ReportMetric(metric["cycles/32KiB-1T"]/metric["cycles/32KiB-8T"], "speedup-8T")
	}
}

// BenchmarkFig10CleanVsFlushReread reproduces Figure 10: re-reading after
// CBO.CLEAN (cache hit) vs after CBO.FLUSH (refetch), paper: ~2x.
func BenchmarkFig10CleanVsFlushReread(b *testing.B) {
	savedSizes := bench.Sizes
	bench.Sizes = []uint64{4096}
	defer func() { bench.Sizes = savedSizes }()
	var rows []bench.Fig10Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig10(nil, []int{1})
	}
	var clean, flush float64
	for _, r := range rows {
		if r.Clean {
			clean = r.Cycles
		} else {
			flush = r.Cycles
		}
	}
	b.ReportMetric(clean, "cycles/clean")
	b.ReportMetric(flush, "cycles/flush")
	if clean > 0 {
		b.ReportMetric(flush/clean, "flush/clean")
	}
}

// BenchmarkFig11Comparative1T reproduces Figure 11: single-thread writeback
// latency across architectures at 4 KiB, where Intel clflush diverges.
func BenchmarkFig11Comparative1T(b *testing.B) {
	var worst, best float64
	for i := 0; i < b.N; i++ {
		worst, best = 0, 1e18
		for _, m := range commercial.Models() {
			l := m.Latency(4096, 1)
			if l > worst {
				worst = l
			}
			if l < best {
				best = l
			}
		}
	}
	b.ReportMetric(worst/best, "worst/best@4KiB")
}

// BenchmarkFig12Comparative8T reproduces Figure 12: with 8 threads the
// Intel clflush divergence appears only above 16 KiB.
func BenchmarkFig12Comparative8T(b *testing.B) {
	clflush, _ := commercial.ByName("Intel", "clflush")
	opt, _ := commercial.ByName("Intel", "clflushopt")
	var small, large float64
	for i := 0; i < b.N; i++ {
		small = clflush.Latency(4096, 8) / opt.Latency(4096, 8)
		large = clflush.Latency(32<<10, 8) / opt.Latency(32<<10, 8)
	}
	b.ReportMetric(small, "clflush/opt@4KiB")
	b.ReportMetric(large, "clflush/opt@32KiB")
}

// BenchmarkFig13SkipItMicro reproduces Figure 13: ten redundant CBO.X per
// line, Skip It vs naive (paper: 15-30% faster).
func BenchmarkFig13SkipItMicro(b *testing.B) {
	savedSizes := bench.Sizes
	bench.Sizes = []uint64{2048}
	defer func() { bench.Sizes = savedSizes }()
	var rows []bench.Fig13Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig13(nil, []int{1}, 10)
	}
	var naive, skip float64
	for _, r := range rows {
		if r.SkipIt {
			skip = r.Cycles
		} else {
			naive = r.Cycles
		}
	}
	b.ReportMetric(naive, "cycles/naive")
	b.ReportMetric(skip, "cycles/skipit")
	if naive > 0 {
		b.ReportMetric((naive-skip)/naive*100, "speedup-%")
	}
}

// benchPersist runs one §7.4 configuration with reduced op counts.
func benchPersist(b *testing.B, structure string, mode persist.Mode, kind bench.PolicyKind, upd int) bench.PersistRow {
	b.Helper()
	saved := bench.PersistOpsPerThr
	bench.PersistOpsPerThr = 4000
	defer func() { bench.PersistOpsPerThr = saved }()
	var row bench.PersistRow
	for i := 0; i < b.N; i++ {
		row = bench.RunPersistConfig(structure, mode, kind, upd, bench.FliTDefaultTable)
	}
	return row
}

// BenchmarkFig14Structures reproduces Figure 14's headline comparison on the
// hash table (5% updates, 2 threads): Skip It vs FliT vs plain.
func BenchmarkFig14Structures(b *testing.B) {
	for _, kind := range []bench.PolicyKind{bench.PolicyPlain, bench.PolicyFliTHash, bench.PolicyLinkAndPersist, bench.PolicySkipIt} {
		b.Run(kind.String(), func(b *testing.B) {
			row := benchPersist(b, ds.NameHash, persist.Automatic, kind, 5)
			b.ReportMetric(row.Mops, "Mops/s")
		})
	}
}

// BenchmarkFig15UpdateSweep reproduces Figure 15's end points on the BST:
// read-only vs update-only throughput under Skip It.
func BenchmarkFig15UpdateSweep(b *testing.B) {
	for _, upd := range []int{0, 50} {
		b.Run(map[int]string{0: "reads", 50: "updates"}[upd], func(b *testing.B) {
			row := benchPersist(b, ds.NameBST, persist.Automatic, bench.PolicySkipIt, upd)
			b.ReportMetric(row.Mops, "Mops/s")
		})
	}
}

// BenchmarkFig16FliTSensitivity reproduces Figure 16: BST throughput under
// FliT with a small vs large counter table.
func BenchmarkFig16FliTSensitivity(b *testing.B) {
	saved := bench.PersistOpsPerThr
	bench.PersistOpsPerThr = 4000
	defer func() { bench.PersistOpsPerThr = saved }()
	var rows []bench.Fig16Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig16([]uint64{1 << 6, 1 << 16})
	}
	b.ReportMetric(rows[0].Mops, "Mops/s-tiny-table")
	b.ReportMetric(rows[1].Mops, "Mops/s-large-table")
}

// --- Ablations: the §5 design choices DESIGN.md calls out ---

// BenchmarkAblationWideDataArray quantifies the §5.2 widened data array:
// filling an FSHR buffer in 1 cycle vs 8.
func BenchmarkAblationWideDataArray(b *testing.B) {
	for _, wide := range []bool{true, false} {
		name := "wide"
		if !wide {
			name = "narrow"
		}
		b.Run(name, func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultSystemConfig(1)
				cfg.L1.Flush.WideDataArray = wide
				cycles = measureFlushSweep(cfg, 4096)
			}
			b.ReportMetric(cycles, "cycles/4KiB")
		})
	}
}

// BenchmarkAblationFSHRCount quantifies FSHR-level parallelism.
func BenchmarkAblationFSHRCount(b *testing.B) {
	for _, n := range []int{1, 2, 8} {
		b.Run(map[int]string{1: "fshr-1", 2: "fshr-2", 8: "fshr-8"}[n], func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultSystemConfig(1)
				cfg.L1.Flush.NumFSHRs = n
				cycles = measureFlushSweep(cfg, 4096)
			}
			b.ReportMetric(cycles, "cycles/4KiB")
		})
	}
}

// BenchmarkAblationCoalescing quantifies §5.3 same-line coalescing under
// redundant writebacks.
func BenchmarkAblationCoalescing(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "coalescing-on"
		if !on {
			name = "coalescing-off"
		}
		b.Run(name, func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultSystemConfig(1)
				cfg.L1.Flush.Coalescing = on
				cfg.L1.Flush.SkipIt = false
				cycles = measureRedundantCleans(cfg, 512, 4)
			}
			b.ReportMetric(cycles, "cycles")
		})
	}
}

// BenchmarkAblationFlushQueueDepth quantifies the §5.2 flush queue.
func BenchmarkAblationFlushQueueDepth(b *testing.B) {
	for _, depth := range []int{1, 8} {
		b.Run(map[int]string{1: "queue-1", 8: "queue-8"}[depth], func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultSystemConfig(1)
				cfg.L1.Flush.QueueDepth = depth
				cycles = measureFlushSweep(cfg, 4096)
			}
			b.ReportMetric(cycles, "cycles/4KiB")
		})
	}
}

// measureFlushSweep runs dirty-region + flush-region + fence and returns the
// cycles from first CBO issue to fence completion.
func measureFlushSweep(cfg SystemConfig, size uint64) float64 {
	s := NewSystemWithConfig(cfg)
	pb := NewProgram().StoreRegion(0, size, 64, 1).Fence()
	start := pb.Mark()
	pb.CboRegion(0, size, 64, false)
	fence := pb.Mark()
	pb.Fence()
	if _, err := s.Run([]*Program{pb.Build()}, 10_000_000); err != nil {
		panic(err)
	}
	return float64(s.Cores[0].Timing(fence).CompletedAt - s.Cores[0].Timing(start).IssuedAt)
}

// measureRedundantCleans runs store + (1+redundant) cleans per line.
func measureRedundantCleans(cfg SystemConfig, size uint64, redundant int) float64 {
	s := NewSystemWithConfig(cfg)
	pb := NewProgram()
	start := pb.Mark()
	for a := uint64(0); a < size; a += 64 {
		pb.Store(a, 1)
		for r := 0; r <= redundant; r++ {
			pb.CboClean(a)
		}
	}
	fence := pb.Mark()
	pb.Fence()
	if _, err := s.Run([]*Program{pb.Build()}, 10_000_000); err != nil {
		panic(err)
	}
	return float64(s.Cores[0].Timing(fence).CompletedAt - s.Cores[0].Timing(start).IssuedAt)
}

// BenchmarkAblationCrossKindCoalescing quantifies the §5.3 future-work
// optimization: merging CBO.X of different kinds on the same line.
func BenchmarkAblationCrossKindCoalescing(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "cross-kind-off"
		if on {
			name = "cross-kind-on"
		}
		b.Run(name, func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultSystemConfig(1)
				cfg.L1.Flush.SkipIt = false
				cfg.L1.Flush.CoalesceCrossKind = on
				s := NewSystemWithConfig(cfg)
				pb := NewProgram()
				start := pb.Mark()
				for a := uint64(0); a < 2048; a += 64 {
					pb.Store(a, 1)
					pb.CboClean(a)
					pb.CboFlush(a) // cross-kind: upgrades the queued clean
				}
				fence := pb.Mark()
				pb.Fence()
				if _, err := s.Run([]*Program{pb.Build()}, 10_000_000); err != nil {
					panic(err)
				}
				cycles = float64(s.Cores[0].Timing(fence).CompletedAt - s.Cores[0].Timing(start).IssuedAt)
			}
			b.ReportMetric(cycles, "cycles")
		})
	}
}

// BenchmarkCflushDL1VsCboFlush compares SiFive's L1-only eviction against
// the full CBO.FLUSH (§2.6): cheaper, but without the durability guarantee.
func BenchmarkCflushDL1VsCboFlush(b *testing.B) {
	for _, vendor := range []bool{true, false} {
		name := "cbo.flush"
		if vendor {
			name = "cflush.d.l1"
		}
		b.Run(name, func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				s := NewSystem(1)
				pb := NewProgram().StoreRegion(0, 4096, 64, 1).Fence()
				start := pb.Mark()
				for a := uint64(0); a < 4096; a += 64 {
					if vendor {
						pb.CflushDL1(a)
					} else {
						pb.CboFlush(a)
					}
				}
				end := pb.Mark()
				pb.Fence()
				if _, err := s.Run([]*Program{pb.Build()}, 10_000_000); err != nil {
					panic(err)
				}
				cycles = float64(s.Cores[0].Timing(end).CompletedAt - s.Cores[0].Timing(start).IssuedAt)
			}
			b.ReportMetric(cycles, "cycles/4KiB")
		})
	}
}
