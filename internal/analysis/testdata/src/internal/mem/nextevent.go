// Package memfix is the nextevent-analyzer component fixture: its import
// path ends in internal/mem, so every Tick-bearing type here must implement
// NextEvent(int64) int64.
package memfix

// Good ticks and reports its next event.
type Good struct{ busyUntil int64 }

func (g *Good) Tick(now int64) { g.busyUntil = now + 1 }

func (g *Good) NextEvent(now int64) int64 { return g.busyUntil }

// Forgot ticks but cannot tell the clock when it next acts.
type Forgot struct{ n int64 }

func (f *Forgot) Tick(now int64) { f.n = now } // want `Forgot has a Tick method but no NextEvent`

// WrongShape has a NextEvent with the wrong signature, which the
// fast-forward fold cannot call.
type WrongShape struct{ n int64 }

func (w *WrongShape) Tick(now int64) { w.n = now } // want `WrongShape has a Tick method but no NextEvent`

func (w *WrongShape) NextEvent() int64 { return w.n }

// NotClocked has no Tick; it does not participate in the cycle loop.
type NotClocked struct{}

func (n *NotClocked) Poke() {}
