package tlctest

import (
	"encoding/json"
	"testing"
)

func TestEpisodeSmoke(t *testing.T) {
	script, fail, st := Run(DefaultParams(1))
	if fail != nil {
		t.Fatalf("episode failed: %s (cycle %d)", fail.Message, fail.Cycle)
	}
	if st.Acquires == 0 || st.Grants == 0 {
		t.Fatalf("episode generated no coherence traffic: %+v", st)
	}
	if len(script.Ops) != DefaultParams(1).Agents*DefaultParams(1).OpsPerAgent {
		t.Fatalf("script has %d ops", len(script.Ops))
	}
}

// verdict flattens an episode result for byte comparison.
func verdict(t *testing.T, fail *Failure, st Stats) string {
	t.Helper()
	raw, err := json.Marshal(struct {
		Fail  *Failure `json:"fail"`
		Stats Stats    `json:"stats"`
	}{fail, st})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestEpisodeDeterministic(t *testing.T) {
	for _, seed := range []int64{3, 77, 20260808} {
		p := DefaultParams(seed)
		s1 := BuildScript(p)
		s2 := BuildScript(p)
		b1, _ := json.Marshal(s1)
		b2, _ := json.Marshal(s2)
		if string(b1) != string(b2) {
			t.Fatalf("seed %d: script expansion is not deterministic", seed)
		}
		f1, st1 := RunScript(s1)
		f2, st2 := RunScript(s2)
		if v1, v2 := verdict(t, f1, st1), verdict(t, f2, st2); v1 != v2 {
			t.Fatalf("seed %d: verdict drifted between identical runs:\n%s\n%s", seed, v1, v2)
		}
	}
}

func TestEpisodeSweep(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	for seed := int64(0); seed < int64(n); seed++ {
		_, fail, st := Run(DefaultParams(seed))
		if fail != nil {
			t.Fatalf("seed %d failed: %s (cycle %d)", seed, fail.Message, fail.Cycle)
		}
		if st.Cycles == 0 {
			t.Fatalf("seed %d: episode ran zero cycles", seed)
		}
	}
}

// TestEpisodeMoreAgents exercises the harness above the default agent count:
// contention grows superlinearly with the fleet.
func TestEpisodeMoreAgents(t *testing.T) {
	p := DefaultParams(9)
	p.Agents = 5
	p.OpsPerAgent = 16
	_, fail, st := Run(p)
	if fail != nil {
		t.Fatalf("5-agent episode failed: %s (cycle %d)", fail.Message, fail.Cycle)
	}
	if st.ProbesAnswered == 0 {
		t.Fatalf("5 agents over 6 addresses produced no probe traffic: %+v", st)
	}
}

// TestEpisodeNoFaults pins the chaos-free path: the schedule composition is
// optional, not load-bearing for the harness itself.
func TestEpisodeNoFaults(t *testing.T) {
	p := DefaultParams(11)
	p.Faults = 0
	_, fail, _ := Run(p)
	if fail != nil {
		t.Fatalf("fault-free episode failed: %s", fail.Message)
	}
}
