package bench

import (
	"testing"

	"skipit/internal/ds"
	"skipit/internal/persist"
)

// small shrinks every knob for fast tests and restores on cleanup.
func small(t *testing.T) {
	t.Helper()
	savedReps, savedSizes, savedThreads, savedOps := Reps, Sizes, ThreadCounts, PersistOpsPerThr
	savedList, savedHash, savedTree := ListKeys, HashKeys, TreeKeys
	Reps = 1
	Sizes = []uint64{64, 1024}
	ThreadCounts = []int{1, 2}
	PersistOpsPerThr = 300
	ListKeys, HashKeys, TreeKeys = 64, 256, 256
	t.Cleanup(func() {
		Reps, Sizes, ThreadCounts, PersistOpsPerThr = savedReps, savedSizes, savedThreads, savedOps
		ListKeys, HashKeys, TreeKeys = savedList, savedHash, savedTree
	})
}

func TestFig9ShapeAndScaling(t *testing.T) {
	small(t)
	rows := Fig9(nil, false)
	if len(rows) != len(Sizes)*len(ThreadCounts) {
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[[2]uint64]float64{}
	for _, r := range rows {
		if r.Cycles <= 0 {
			t.Fatalf("non-positive latency: %+v", r)
		}
		byKey[[2]uint64{r.Size, uint64(r.Threads)}] = r.Cycles
	}
	// More data takes longer at fixed threads.
	if byKey[[2]uint64{1024, 1}] <= byKey[[2]uint64{64, 1}] {
		t.Fatal("latency not increasing with size")
	}
	// More threads never slower at the largest size.
	if byKey[[2]uint64{1024, 2}] > byKey[[2]uint64{1024, 1}] {
		t.Fatal("two threads slower than one")
	}
}

func TestFig9SingleLineBand(t *testing.T) {
	// §7.2 anchor: one-line CBO.X lands near 100 cycles.
	lat := SweepOnce(nil, 64, 1, false)
	if lat < 60 || lat > 200 {
		t.Fatalf("single-line flush latency %.0f, want ~100", lat)
	}
	clean := SweepOnce(nil, 64, 1, true)
	// §7.2: clean and flush are equivalent in isolation.
	if ratio := clean / lat; ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("clean/flush isolation ratio %.2f, want ~1", ratio)
	}
}

func TestFig10CleanBeatsFlush(t *testing.T) {
	small(t)
	rows := Fig10(nil, []int{1})
	var clean, flush float64
	for _, r := range rows {
		if r.Size != 1024 {
			continue
		}
		if r.Clean {
			clean = r.Cycles
		} else {
			flush = r.Cycles
		}
	}
	if !(flush > clean) {
		t.Fatalf("flush (%.0f) not slower than clean (%.0f) on re-read workload", flush, clean)
	}
}

func TestFig13SkipItWins(t *testing.T) {
	small(t)
	rows := Fig13(nil, []int{1}, 10)
	var naive, skip float64
	for _, r := range rows {
		if r.Size != 1024 {
			continue
		}
		if r.SkipIt {
			skip = r.Cycles
		} else {
			naive = r.Cycles
		}
	}
	gain := (naive - skip) / naive
	if gain < 0.05 {
		t.Fatalf("Skip It gain %.1f%% on redundant cleans, want >5%% (paper: 15-30%%)", gain*100)
	}
}

func TestFig13FlushVariantFallsBackToL2Skip(t *testing.T) {
	small(t)
	rows := Fig13Flush(nil, []int{1}, 4)
	var naive, skip float64
	for _, r := range rows {
		if r.Size != 1024 {
			continue
		}
		if r.SkipIt {
			skip = r.Cycles
		} else {
			naive = r.Cycles
		}
	}
	// After the first flush the line is gone; both modes resolve the
	// redundant flushes at the L2 — Skip It must not be slower.
	if skip > naive*1.05 {
		t.Fatalf("Skip It flush variant slower than naive: %.0f vs %.0f", skip, naive)
	}
}

func TestPersistConfigRelationships(t *testing.T) {
	small(t)
	base := RunPersistConfig(ds.NameHash, persist.Automatic, PolicyNone, 5, FliTDefaultTable)
	plain := RunPersistConfig(ds.NameHash, persist.Automatic, PolicyPlain, 5, FliTDefaultTable)
	skip := RunPersistConfig(ds.NameHash, persist.Automatic, PolicySkipIt, 5, FliTDefaultTable)
	if !(base.Mops > skip.Mops && skip.Mops > plain.Mops) {
		t.Fatalf("ordering violated: baseline %.3f, skipit %.3f, plain %.3f",
			base.Mops, skip.Mops, plain.Mops)
	}
	if plain.Flushes == 0 {
		t.Fatal("plain issued no flushes under automatic mode")
	}
	if skip.Elided == 0 {
		t.Fatal("Skip It elided nothing under automatic mode")
	}
}

func TestManualModeNearBaseline(t *testing.T) {
	small(t)
	base := RunPersistConfig(ds.NameHash, persist.Manual, PolicyNone, 5, FliTDefaultTable)
	skip := RunPersistConfig(ds.NameHash, persist.Manual, PolicySkipIt, 5, FliTDefaultTable)
	if skip.Mops < base.Mops*0.7 {
		t.Fatalf("manual+skipit %.3f far below baseline %.3f", skip.Mops, base.Mops)
	}
}

func TestFig16Runs(t *testing.T) {
	small(t)
	rows := Fig16([]uint64{64, 4096})
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Mops <= 0 {
			t.Fatalf("non-positive throughput: %+v", r)
		}
	}
}

func TestFig14SkipsLAPForBST(t *testing.T) {
	small(t)
	// Just verify the sweep's structure without running everything: the
	// BST x link-and-persist combination must be absent.
	PersistOpsPerThr = 50
	ListKeys, HashKeys, TreeKeys = 16, 32, 32
	rows := Fig14()
	for _, r := range rows {
		if r.Structure == ds.NameBST && r.Policy == PolicyLinkAndPersist {
			t.Fatal("Fig14 ran link-and-persist on the BST (§7.4: inapplicable)")
		}
	}
}
