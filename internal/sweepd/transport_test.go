package sweepd

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// recordingTransport counts deliveries and always succeeds.
type recordingTransport struct {
	mu    sync.Mutex
	calls []string
}

func (r *recordingTransport) Call(path string, req, resp any) error {
	r.mu.Lock()
	r.calls = append(r.calls, path)
	r.mu.Unlock()
	return nil
}

func (r *recordingTransport) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.calls)
}

// errTransport always fails with a non-fault error.
type errTransport struct{}

func (errTransport) Call(string, any, any) error { return fmt.Errorf("connection refused") }

func TestFaultScheduleIsDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 99, DropRequest: 0.3, DropResponse: 0.2, Duplicate: 0.1}
	run := func() []string {
		ft := &FaultTransport{Inner: &recordingTransport{}, Plan: plan}
		var outcomes []string
		for i := 0; i < 200; i++ {
			err := ft.Call("/api/sweepd/lease", LeaseRequest{}, nil)
			var fe *FaultError
			switch {
			case err == nil:
				outcomes = append(outcomes, "ok")
			case errors.As(err, &fe):
				outcomes = append(outcomes, fe.Kind)
			default:
				outcomes = append(outcomes, "err")
			}
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: %s vs %s — schedule is not a pure function of (seed, call index)", i, a[i], b[i])
		}
	}
	// Sanity: the plan actually injects each configured kind.
	kinds := map[string]int{}
	for _, o := range a {
		kinds[o]++
	}
	for _, k := range []string{"ok", "drop-request", "drop-response"} {
		if kinds[k] == 0 {
			t.Errorf("no %q outcomes in 200 calls: %v", k, kinds)
		}
	}
}

func TestFaultDuplicateDeliversTwice(t *testing.T) {
	inner := &recordingTransport{}
	ft := &FaultTransport{Inner: inner, Plan: FaultPlan{Seed: 1, Duplicate: 1.0}}
	const n = 10
	for i := 0; i < n; i++ {
		if err := ft.Call("/api/sweepd/complete", CompleteRequest{}, nil); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := inner.count(); got != 2*n {
		t.Fatalf("%d calls delivered %d times, want %d (every call duplicated)", n, got, 2*n)
	}
}

func TestFaultPartitionWindows(t *testing.T) {
	inner := &recordingTransport{}
	ft := &FaultTransport{Inner: inner, Plan: FaultPlan{Seed: 5, PartitionEvery: 4, PartitionLen: 2}}
	for i := 0; i < 12; i++ {
		err := ft.Call("/x", nil, nil)
		inWindow := i%4 < 2
		var fe *FaultError
		if inWindow {
			if !errors.As(err, &fe) || fe.Kind != "partition" {
				t.Fatalf("call %d should be partitioned, got %v", i, err)
			}
		} else if err != nil {
			t.Fatalf("call %d outside the window failed: %v", i, err)
		}
	}
	if got := inner.count(); got != 6 {
		t.Fatalf("inner saw %d deliveries, want 6", got)
	}
}

func TestFaultKillDropsEverything(t *testing.T) {
	inner := &recordingTransport{}
	ft := &FaultTransport{Inner: inner, Plan: FaultPlan{Seed: 1}}
	if err := ft.Call("/x", nil, nil); err != nil {
		t.Fatal(err)
	}
	ft.Kill()
	for i := 0; i < 5; i++ {
		err := ft.Call("/x", nil, nil)
		var fe *FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("post-kill call %d: %v, want a FaultError", i, err)
		}
	}
	if got := inner.count(); got != 1 {
		t.Fatalf("killed transport still delivered: %d calls", got)
	}
}
