package hotalloc_test

import (
	"testing"

	"skipit/internal/analysis/antest"
	"skipit/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	antest.Run(t, hotalloc.Analyzer, antest.Dir(t, "internal/linepool"))
}
