package skipit_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"skipit"
	"skipit/internal/sim"
)

// goldenSnapshot flattens a system's metrics snapshot to a canonical JSON
// string with the host-only instruments stripped (encoding/json sorts map
// keys, so equal snapshots marshal to equal bytes).
func goldenSnapshot(t *testing.T, s *skipit.System) string {
	t.Helper()
	snap := s.Snapshot()
	sim.StripHostOnly(&snap)
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// runQuickstart replays the three stages of examples/quickstart on systems
// with the given parallel worker count and folds every observable — run
// cycles, NVMM values, flush-unit statistics, and the full golden metrics
// snapshot — into one comparable transcript.
func runQuickstart(t *testing.T, parallel int) string {
	t.Helper()
	var out strings.Builder

	// Stage 1: store -> CBO.CLEAN -> FENCE durability chain.
	cfg := skipit.DefaultSystemConfig(1)
	cfg.Parallel = parallel
	sys := skipit.NewSystemWithConfig(cfg)
	prog := skipit.NewProgram().
		Store(0x1000, 42).
		CboClean(0x1000).
		Fence().
		Build()
	cycles, err := sys.Run([]*skipit.Program{prog}, 1_000_000)
	if err != nil {
		t.Fatalf("parallel=%d stage 1: %v", parallel, err)
	}
	fmt.Fprintf(&out, "stage1: cycles=%d nvmm=%d snap=%s\n",
		cycles, skipit.NVMMValue(sys, 0x1000), goldenSnapshot(t, sys))

	// Stage 2: an unwritten-back store is lost by a crash.
	cfg2 := skipit.DefaultSystemConfig(1)
	cfg2.Parallel = parallel
	sys2 := skipit.NewSystemWithConfig(cfg2)
	if _, err := sys2.Run([]*skipit.Program{
		skipit.NewProgram().Store(0x2000, 7).Build()}, 1_000_000); err != nil {
		t.Fatalf("parallel=%d stage 2: %v", parallel, err)
	}
	sys2.Crash(false)
	fmt.Fprintf(&out, "stage2: nvmm=%d snap=%s\n",
		skipit.NVMMValue(sys2, 0x2000), goldenSnapshot(t, sys2))

	// Stage 3: Skip It dropping redundant writebacks, on versus off.
	for _, skipIt := range []bool{true, false} {
		cfg := skipit.DefaultSystemConfig(1)
		cfg.L1.Flush.SkipIt = skipIt
		cfg.Parallel = parallel
		s := skipit.NewSystemWithConfig(cfg)
		b := skipit.NewProgram().Store(0x3000, 1).CboClean(0x3000).Fence()
		for i := 0; i < 10; i++ {
			b.CboClean(0x3000)
		}
		b.Fence()
		if _, err := s.Run([]*skipit.Program{b.Build()}, 1_000_000); err != nil {
			t.Fatalf("parallel=%d stage 3 skipit=%v: %v", parallel, skipIt, err)
		}
		st := s.L1s[0].FlushUnit().Stats()
		fmt.Fprintf(&out, "stage3 skipit=%v: offered=%d dropped=%d releases=%d snap=%s\n",
			skipIt, st.Offered, st.SkipDropped, st.RootReleases, goldenSnapshot(t, s))
	}
	return out.String()
}

// TestQuickstartGoldenSnapshotParallel replays the quickstart example serial
// and at -parallel ∈ {1,2,4}: every observable, including the full metrics
// snapshot, must be byte-identical.
func TestQuickstartGoldenSnapshotParallel(t *testing.T) {
	serial := runQuickstart(t, 0)
	for _, workers := range []int{1, 2, 4} {
		if got := runQuickstart(t, workers); got != serial {
			t.Fatalf("parallel=%d quickstart transcript diverged from serial:\n%s\nvs\n%s",
				workers, got, serial)
		}
	}
}
