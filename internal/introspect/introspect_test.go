package introspect

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"skipit/internal/metrics"
	"skipit/internal/trace"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, body
}

func testSnapshot() metrics.Snapshot {
	r := metrics.NewRegistry()
	r.Counter("l1[0]", "writebacks").Add(7)
	r.Counter("l1[1]", "writebacks").Add(3)
	r.Gauge("l2", "listbuffer_depth").Set(2)
	r.Histogram("flush[0]", "latency", []uint64{10, 100}).Observe(42)
	snap := r.Snapshot(1234)
	snap.Derived["skip_rate"] = 0.5
	snap.Derived["host_sim_cycles_per_sec"] = 1e6
	return snap
}

func TestEndpointsBeforePublish(t *testing.T) {
	s, err := New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()
	if code, _ := get(t, base+"/metrics"); code != http.StatusServiceUnavailable {
		t.Errorf("/metrics before publish: status %d, want 503", code)
	}
	if code, _ := get(t, base+"/snapshot"); code != http.StatusServiceUnavailable {
		t.Errorf("/snapshot before publish: status %d, want 503", code)
	}
	if code, _ := get(t, base+"/trace"); code != http.StatusNotFound {
		t.Errorf("/trace without tracer: status %d, want 404", code)
	}
	if code, _ := get(t, base+"/recorder"); code != http.StatusNotFound {
		t.Errorf("/recorder without recorder: status %d, want 404", code)
	}
	if code, body := get(t, base+"/"); code != http.StatusOK || !strings.Contains(string(body), "/metrics") {
		t.Errorf("index: status %d body %q", code, body)
	}
}

func TestSnapshotAndMetrics(t *testing.T) {
	s, err := New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.PublishSnapshot(testSnapshot())
	base := "http://" + s.Addr()

	code, body := get(t, base+"/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot: status %d", code)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/snapshot: bad JSON: %v", err)
	}
	if snap.Cycle != 1234 || snap.Counters["l1[0].writebacks"] != 7 {
		t.Errorf("/snapshot: cycle=%d counters=%v", snap.Cycle, snap.Counters)
	}

	code, body = get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	text := string(body)
	for _, want := range []string{
		"skipit_cycle 1234",
		`skipit_l1_writebacks{instance="0"} 7`,
		`skipit_l1_writebacks{instance="1"} 3`,
		"skipit_l2_listbuffer_depth 2",
		"skipit_derived_skip_rate 0.5",
		`skipit_flush_latency_bucket{instance="0",le="100"} 1`,
		`skipit_flush_latency_sum{instance="0"} 42`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics: missing %q in:\n%s", want, text)
		}
	}
	// Every sample line must be "name value" or "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("/metrics: malformed sample line %q", line)
		}
	}
}

func TestTraceAndRecorderEndpoints(t *testing.T) {
	s, err := New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var sink bytes.Buffer
	ct := trace.NewChromeTracer(&sink)
	ct.Emit(trace.Event{Cycle: 5, Source: "l1[0]", Kind: "acquire", Addr: 0x1000, HasAddr: true, Txn: 1})
	s.AttachChromeTrace(ct)

	rec := trace.NewRecorder(8)
	rec.Component("l1[0]").Record(5, trace.RecAcquire, trace.CauseNone, 1, 0x1000, 0)
	s.AttachRecorder(rec)

	base := "http://" + s.Addr()
	code, body := get(t, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace: status %d", code)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/trace: bad JSON: %v", err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if id, ok := ev["id"].(string); ok && id == "txn1" {
			found = true
		}
	}
	if !found {
		t.Errorf("/trace: no txn1 span in %d events", len(doc.TraceEvents))
	}

	code, body = get(t, base+"/recorder")
	if code != http.StatusOK {
		t.Fatalf("/recorder: status %d", code)
	}
	var dump []trace.RecDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("/recorder: bad JSON: %v", err)
	}
	if len(dump) != 1 || dump[0].Component != "l1[0]" || len(dump[0].Events) != 1 {
		t.Errorf("/recorder: dump %+v", dump)
	}
}

func TestEventsStream(t *testing.T) {
	s, err := New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, err := http.Get("http://" + s.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/events: status %d", resp.StatusCode)
	}

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()

	// The subscriber registers before the handler's first flush reaches us;
	// wait for the comment line so the publish below cannot race it.
	waitFor := func(want string) string {
		deadline := time.After(5 * time.Second)
		for {
			select {
			case l, ok := <-lines:
				if !ok {
					t.Fatalf("stream closed waiting for %q", want)
				}
				if strings.Contains(l, want) {
					return l
				}
			case <-deadline:
				t.Fatalf("timed out waiting for %q", want)
			}
		}
	}
	waitFor(": connected")
	s.PublishSnapshot(testSnapshot())
	waitFor("event: snapshot")
	data := waitFor("data: ")
	var payload map[string]any
	if err := json.Unmarshal([]byte(strings.TrimPrefix(data, "data: ")), &payload); err != nil {
		t.Fatalf("bad event payload %q: %v", data, err)
	}
	if payload["cycle"] != float64(1234) {
		t.Errorf("payload = %v, want cycle 1234", payload)
	}

	s.PublishEvent("sweep", map[string]any{"name": "fig09/x", "state": "done"})
	waitFor("event: sweep")
}
