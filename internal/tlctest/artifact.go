package tlctest

import (
	"encoding/json"
	"fmt"
	"os"

	"skipit/internal/chaos"
)

// ReproVersion is bumped whenever the artifact format or the meaning of the
// seed-to-script expansion changes incompatibly.
const ReproVersion = 1

// Repro is the .tlc.json artifact: everything needed to replay a failing
// episode byte-identically. Script alone replays; Seed/Params record how it
// was found, Failure what it produced when archived.
type Repro struct {
	Version int      `json:"version"`
	Seed    int64    `json:"seed,omitempty"`
	Params  *Params  `json:"params,omitempty"`
	Script  Script   `json:"script"`
	Failure *Failure `json:"failure,omitempty"`
}

// WriteRepro writes the artifact to path.
func WriteRepro(path string, r Repro) error {
	r.Version = ReproVersion
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("tlctest: marshal repro: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRepro reads an artifact back.
func LoadRepro(path string) (Repro, error) {
	var r Repro
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("tlctest: unmarshal %s: %w", path, err)
	}
	if r.Version != ReproVersion {
		return r, fmt.Errorf("tlctest: %s is version %d, this build understands %d", path, r.Version, ReproVersion)
	}
	return r, nil
}

// ShrinkScript minimizes a failing script with the shared ddmin core
// (chaos.ShrinkSlice): first the fault schedule, then the op stream, keeping
// any candidate that still fails with the same kind. maxRuns bounds the
// number of replays (each candidate is a full episode); the best script
// found within the budget is returned along with the runs spent.
func ShrinkScript(s Script, wantKind string, maxRuns int) (Script, int) {
	runs := 0
	fails := func(c Script) bool {
		if runs >= maxRuns {
			return false
		}
		runs++
		fail, _ := RunScript(c)
		return fail != nil && fail.Kind == wantKind
	}

	s.Schedule.Faults = chaos.ShrinkSlice(s.Schedule.Faults, func(fs []chaos.Fault) bool {
		c := s
		c.Schedule = chaos.Schedule{Faults: fs}
		return fails(c)
	})
	s.Ops = chaos.ShrinkSlice(s.Ops, func(ops []Op) bool {
		c := s
		c.Ops = ops
		return fails(c)
	})
	return s, runs
}
