// Package stalefix is the staleignore fixture: its import path ends in
// internal/sim, so the determinism analyzer is live here and its waivers can
// be live or dead. The want comments use the block form because the // slot
// on each line is taken by the directive under test.
package stalefix

import "time"

// used carries a live waiver: the clock read on the line really would be a
// determinism diagnostic, so the directive suppresses something and is not
// stale.
func used() int64 {
	return time.Now().UnixNano() //skipit:ignore determinism fixture: value feeds a log line, never simulated state
}

// stale carries a dead waiver: nothing on the line triggers determinism
// anymore (the clock read it once covered was refactored away).
func stale(x int) int {
	return x + 1 /* want `stale waiver: //skipit:ignore no longer suppresses any determinism diagnostic on this line` */ //skipit:ignore determinism fixture: covered a clock read that no longer exists
}

// typo names an analyzer that does not exist, so the clock read next to it
// is NOT suppressed — both diagnostics must fire.
func typo() int64 {
	return time.Now().UnixNano() /* want `wall-clock read time\.Now` `skipit:ignore names unknown analyzer "determinsm"` */ //skipit:ignore determinsm fixture: misspelled analyzer name
}
