package trace

import (
	"strings"
	"testing"
)

func ev(cycle int64, kind string, addr uint64) Event {
	return Event{Cycle: cycle, Source: "t", Kind: kind, Addr: addr, HasAddr: true}
}

func TestRingKeepsMostRecent(t *testing.T) {
	r := NewRing(3)
	for i := int64(0); i < 5; i++ {
		r.Emit(ev(i, "x", 0))
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	for i, e := range got {
		if e.Cycle != int64(2+i) {
			t.Fatalf("event %d has cycle %d, want %d (oldest-first)", i, e.Cycle, 2+i)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("total %d, want 5", r.Total())
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(8)
	r.Emit(ev(1, "a", 0))
	r.Emit(ev(2, "b", 0))
	got := r.Events()
	if len(got) != 2 || got[0].Kind != "a" || got[1].Kind != "b" {
		t.Fatalf("events = %v", got)
	}
}

func TestRingPanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

func TestFilter(t *testing.T) {
	r := NewRing(8)
	r.Emit(ev(1, "cbo-drop", 64))
	r.Emit(ev(2, "grant", 64))
	r.Emit(ev(3, "cbo-enqueue", 128))
	if got := r.Filter("cbo"); len(got) != 2 {
		t.Fatalf("Filter(cbo) = %d events, want 2", len(got))
	}
	if got := r.Filter("grant"); len(got) != 1 {
		t.Fatalf("Filter(grant) = %d events, want 1", len(got))
	}
}

func TestForAddrMatchesLine(t *testing.T) {
	r := NewRing(8)
	r.Emit(ev(1, "a", 0x1000))
	r.Emit(ev(2, "b", 0x1008)) // same line
	r.Emit(ev(3, "c", 0x2000))
	if got := r.ForAddr(0x1010); len(got) != 2 {
		t.Fatalf("ForAddr = %d events, want 2 (line-granular)", len(got))
	}
}

func TestForAddrDistinguishesLineZeroFromNoAddr(t *testing.T) {
	r := NewRing(8)
	r.Emit(ev(1, "store", 0x0))                         // a real event about line 0
	r.Emit(ev(2, "store", 0x8))                         // same line
	r.Emit(Event{Cycle: 3, Source: "t", Kind: "drain"}) // no address
	got := r.ForAddr(0x0)
	if len(got) != 2 {
		t.Fatalf("ForAddr(0) = %d events, want 2 (line-0 events are real)", len(got))
	}
	for _, e := range got {
		if !e.HasAddr {
			t.Fatalf("ForAddr returned address-less event %v", e)
		}
	}
}

func TestEventStringShowsLineZero(t *testing.T) {
	withAddr := ev(1, "store", 0x0).String()
	if !strings.Contains(withAddr, "0x0") {
		t.Errorf("event about line 0 should print its address: %q", withAddr)
	}
	noAddr := Event{Cycle: 1, Source: "t", Kind: "drain"}.String()
	if strings.Contains(noAddr, "0x") {
		t.Errorf("address-less event should print no address: %q", noAddr)
	}
}

func TestRingWraparoundOrdering(t *testing.T) {
	// Overflow a small ring several times over and verify Events() stays
	// oldest-first with contiguous cycles, and Total() counts evictions.
	r := NewRing(4)
	const n = 11
	for i := int64(0); i < n; i++ {
		r.Emit(ev(i, "x", uint64(i)*64))
	}
	got := r.Events()
	if len(got) != 4 {
		t.Fatalf("retained %d, want 4", len(got))
	}
	for i, e := range got {
		if want := int64(n - 4 + i); e.Cycle != want {
			t.Fatalf("event %d has cycle %d, want %d", i, e.Cycle, want)
		}
	}
	if r.Total() != n {
		t.Fatalf("total %d, want %d", r.Total(), n)
	}
}

func TestRingWraparoundFilterAndForAddr(t *testing.T) {
	// After overflow, Filter and ForAddr must only see retained events.
	r := NewRing(3)
	r.Emit(ev(1, "cbo-drop", 0x1000)) // will be evicted
	r.Emit(ev(2, "grant", 0x1000))    // will be evicted
	r.Emit(ev(3, "cbo-drop", 0x2000))
	r.Emit(ev(4, "grant", 0x2000))
	r.Emit(ev(5, "cbo-drop", 0x1000))
	if got := r.Filter("cbo"); len(got) != 2 {
		t.Fatalf("Filter(cbo) = %d events, want 2 (evicted events excluded)", len(got))
	}
	if got := r.ForAddr(0x1000); len(got) != 1 || got[0].Cycle != 5 {
		t.Fatalf("ForAddr(0x1000) = %v, want only the cycle-5 event", got)
	}
}

func TestRingExactFillBoundary(t *testing.T) {
	// Exactly filling the ring (no eviction yet) is the wraparound edge.
	r := NewRing(3)
	for i := int64(0); i < 3; i++ {
		r.Emit(ev(i, "x", 0x40))
	}
	got := r.Events()
	if len(got) != 3 || got[0].Cycle != 0 || got[2].Cycle != 2 {
		t.Fatalf("exact-fill events = %v", got)
	}
	if r.Total() != 3 {
		t.Fatalf("total %d, want 3", r.Total())
	}
}

func TestEmitGlobalHasNoAddr(t *testing.T) {
	r := NewRing(4)
	EmitGlobal(r, 9, "l2", "drain", "done")
	EmitGlobal(nil, 9, "l2", "drain", "done") // nil-safe
	got := r.Events()
	if len(got) != 1 || got[0].HasAddr {
		t.Fatalf("EmitGlobal events = %v, want one address-less event", got)
	}
}

func TestWriterStreams(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Emit(ev(7, "probe", 0x40))
	if !strings.Contains(sb.String(), "probe") || !strings.Contains(sb.String(), "0x40") {
		t.Fatalf("stream output %q", sb.String())
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewRing(4), NewRing(4)
	m := Multi{a, b}
	m.Emit(ev(1, "x", 0))
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatal("multi did not fan out")
	}
}

func TestEmitNilTracerIsNoop(t *testing.T) {
	Emit(nil, 1, "s", "k", 0, "") // must not panic
}

func TestDump(t *testing.T) {
	r := NewRing(4)
	r.Emit(ev(1, "a", 0x40))
	r.Emit(ev(2, "b", 0))
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("dumped %d lines, want 2", len(lines))
	}
}
