package metricname_test

import (
	"testing"

	"skipit/internal/analysis/antest"
	"skipit/internal/analysis/metricname"
)

func TestMetricName(t *testing.T) {
	antest.Run(t, metricname.Analyzer, antest.Dir(t, "metricname/consumer"))
}
