package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %f", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %f", got)
	}
	if got := Median([]float64{7}); got != 7 {
		t.Fatalf("singleton median = %f", got)
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("median sorted the caller's slice")
	}
}

func TestMeanSigma(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("mean = %f", got)
	}
	if got := Sigma(xs); got != 2 {
		t.Fatalf("sigma = %f", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{5, -1, 3}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Fatalf("min/max = %f/%f", Min(xs), Max(xs))
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(100, 50); got != 2 {
		t.Fatalf("speedup = %f", got)
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Fatal("speedup by zero not +Inf")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15},
		{25, 20},
		{40, 29}, // rank 1.6: 20 + 0.6*(35-20)
		{50, 35},
		{75, 40},
		{100, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%.0f = %f, want %f", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("singleton P99 = %f, want 7", got)
	}
}

func TestPercentileMatchesMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		xs := make([]float64, rng.Intn(40)+1)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 50
		}
		if p, m := Percentile(xs, 50), Median(xs); math.Abs(p-m) > 1e-9 {
			t.Fatalf("P50 = %f but median = %f for %v", p, m, xs)
		}
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 90)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("percentile sorted the caller's slice")
	}
}

func TestPercentilePanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{-1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(_, %f) did not panic", p)
				}
			}()
			Percentile([]float64{1}, p)
		}()
	}
}

func TestPanicsOnEmpty(t *testing.T) {
	for name, f := range map[string]func(){
		"median":     func() { Median(nil) },
		"mean":       func() { Mean(nil) },
		"sigma":      func() { Sigma(nil) },
		"min":        func() { Min(nil) },
		"max":        func() { Max(nil) },
		"percentile": func() { Percentile(nil, 50) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(nil) did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Properties: min <= median <= max and min <= mean <= max; sigma >= 0.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, int(n%50)+1)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		lo, hi := Min(xs), Max(xs)
		med, mean := Median(xs), Mean(xs)
		return lo <= med && med <= hi && lo <= mean && mean <= hi && Sigma(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedianSigma(t *testing.T) {
	xs := []float64{3, 1, 2}
	med, sig := MedianSigma(xs)
	if med != Median(xs) || sig != Sigma(xs) {
		t.Fatalf("MedianSigma = (%v, %v), want (%v, %v)", med, sig, Median(xs), Sigma(xs))
	}
}

func TestPctDelta(t *testing.T) {
	for _, tc := range []struct{ base, cur, want float64 }{
		{100, 110, 10},
		{100, 90, -10},
		{100, 100, 0},
		{0, 0, 0},
	} {
		if got := PctDelta(tc.base, tc.cur); got != tc.want {
			t.Errorf("PctDelta(%v, %v) = %v, want %v", tc.base, tc.cur, got, tc.want)
		}
	}
	if got := PctDelta(0, 5); !math.IsInf(got, 1) {
		t.Errorf("PctDelta(0, 5) = %v, want +Inf", got)
	}
}
