// Package boom models the SonicBOOM core at the level that matters for the
// paper's evaluation: the re-order buffer's in-order commit illusion (§3.1)
// and the load-store unit's firing rules (§3.2) —
//
//   - loads fire out of order as soon as they are ready, up to two memory
//     requests per cycle;
//   - stores, CBO.X and fences live in the STQ; an STQ request fires only
//     when the ROB head points at it, so STQ requests execute in program
//     order;
//   - loads forward from older STQ stores to the same word and are held
//     behind older unfinished fences and same-line CBO.X requests (§5.3);
//   - a fence completes only when every older memory operation is done and
//     the data cache's flushing signal is low (§5.3);
//   - a nacked request is retried after a short delay (§3.3).
//
// Fetch, decode, rename and the FU pipelines are abstracted away: the §7
// microbenchmarks measure memory-system latency, which these rules define.
package boom

import (
	"fmt"

	"skipit/internal/isa"
	"skipit/internal/l1"
	"skipit/internal/metrics"
	"skipit/internal/tilelink"
)

// Config sets the core's queue sizes and widths to SonicBOOM-like values.
type Config struct {
	ROBEntries    int
	LDQEntries    int
	STQEntries    int
	DispatchWidth int
	CommitWidth   int
	MemWidth      int // LSU fire width (§3.2: two per cycle)
	RetryDelay    int // cycles before re-firing after a nack
	// Metrics is the registry the core registers its counters with, under
	// the instance name "core[id]". Nil gets a private registry.
	Metrics *metrics.Registry
}

// DefaultConfig mirrors the SonicBOOM MediumBoom-class configuration used
// on the paper's FPGA platform.
func DefaultConfig() Config {
	return Config{
		ROBEntries:    64,
		LDQEntries:    32,
		STQEntries:    32,
		DispatchWidth: 2,
		CommitWidth:   2,
		MemWidth:      2,
		RetryDelay:    6,
	}
}

// Timing records one instruction's lifecycle; -1 marks events that have not
// happened. Benches derive all figure measurements from these.
type Timing struct {
	DispatchedAt int64
	IssuedAt     int64
	CompletedAt  int64
	CommittedAt  int64
	LoadValue    uint64
	Nacks        int
}

type entryState uint8

const (
	esWaiting entryState = iota
	esIssued
	esDone
)

// entry is one in-flight instruction: a ROB slot plus its LDQ/STQ view.
type entry struct {
	instrIdx  int
	instr     isa.Instr
	state     entryState
	nextTryAt int64
	reqID     int
	// stalling latches once a ROB-head fence has counted its first
	// drain-stall cycle; from then on tryCompleteFence attributes every
	// elapsed cycle — including fast-forwarded ones — to the stall counter.
	stalling bool
}

// coreCounters holds the core's registry-backed instruments.
type coreCounters struct {
	committed *metrics.Counter
	// fenceDrainStalls counts cycles the ROB-head fence waited for the
	// flush unit to drain (§5.3 fence gating).
	fenceDrainStalls *metrics.Counter
	// nackRetries counts data-cache nacks absorbed by the LSU replay logic.
	nackRetries  *metrics.Counter
	robOccupancy *metrics.Gauge
}

func newCoreCounters(reg *metrics.Registry, name string) coreCounters {
	return coreCounters{
		committed:        reg.Counter(name, "committed"),
		fenceDrainStalls: reg.Counter(name, "fence_drain_stall_cycles"),
		nackRetries:      reg.Counter(name, "nack_retries"),
		robOccupancy:     reg.Gauge(name, "rob_occupancy"),
	}
}

// Core drives one program through one L1 data cache. In parallel
// simulation each Core belongs to its own shard together with that cache.
//
//skipit:shard-owned core
type Core struct {
	cfg Config
	id  int
	dc  *l1.DCache
	ctr coreCounters

	prog    *isa.Program
	timings []Timing

	pc       int
	rob      []*entry // FIFO; index 0 is the ROB head
	ldqCount int
	stqCount int

	nextReqID int
	// inflight holds the entries with an outstanding data cache request,
	// looked up by reqID. Its size is bounded by the LSU fire width times
	// the cache latency, so a linear scan beats a map — and unlike a map it
	// never allocates in steady state.
	inflight []*entry

	// freeEntries recycles retired ROB entry structs so steady-state
	// dispatch does not allocate.
	freeEntries []*entry

	// prevTick is the cycle of the previous Tick. With the fast-forward
	// clock the gap to the current tick can exceed one cycle; the skipped
	// cycles are provably state-frozen, so per-cycle stall counters add the
	// whole gap at once to stay identical to single-stepping.
	prevTick int64

	done bool
	// doneAt is the cycle of the Tick on which the program finished
	// (doneAtNever until then; empty programs are done before any tick).
	// The parallel scheduler uses it to reconstruct the serial run's
	// completion cycle after shards have raced ahead of each other.
	doneAt int64
}

// doneAtNever marks a core whose program has not (yet) finished on any
// ticked cycle. It sorts below any real cycle.
const doneAtNever = int64(-1)

// New builds a core over its private data cache.
func New(cfg Config, id int, dc *l1.DCache) *Core {
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	name := fmt.Sprintf("core[%d]", id)
	return &Core{cfg: cfg, id: id, dc: dc, ctr: newCoreCounters(reg, name)}
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// DCache returns the core's L1.
func (c *Core) DCache() *l1.DCache { return c.dc }

// SetProgram loads a program and resets execution state.
func (c *Core) SetProgram(p *isa.Program) {
	c.prog = p
	c.timings = make([]Timing, p.Len())
	for i := range c.timings {
		c.timings[i] = Timing{DispatchedAt: -1, IssuedAt: -1, CompletedAt: -1, CommittedAt: -1}
	}
	c.pc = 0
	c.rob = c.rob[:0]
	c.ldqCount = 0
	c.stqCount = 0
	c.inflight = c.inflight[:0]
	c.prevTick = -1
	c.done = p.Len() == 0
	c.doneAt = doneAtNever
}

// Done reports whether every instruction has committed.
func (c *Core) Done() bool { return c.done }

// DoneAt returns the cycle of the Tick that committed the final
// instruction, or a negative sentinel when the program has not finished on
// any ticked cycle (still running, or done since before the first tick).
func (c *Core) DoneAt() int64 { return c.doneAt }

// Timings returns the per-instruction records (valid once Done).
func (c *Core) Timings() []Timing { return c.timings }

// Timing returns the record for instruction idx.
func (c *Core) Timing(idx int) Timing { return c.timings[idx] }

// Tick advances the core one cycle: absorb data cache responses, dispatch,
// issue, and commit.
func (c *Core) Tick(now int64) {
	if c.done || c.prog == nil {
		return
	}
	c.pollResponses(now)
	c.dispatch(now)
	c.issue(now)
	c.commit(now)
	c.ctr.robOccupancy.Set(int64(len(c.rob)))
	c.prevTick = now
}

func (c *Core) pollResponses(now int64) {
	for _, resp := range c.dc.PollResponses(now) {
		e := c.takeInflight(resp.ID)
		if e == nil {
			panic(fmt.Sprintf("boom[%d]: response for unknown request %d", c.id, resp.ID))
		}
		t := &c.timings[e.instrIdx]
		if resp.Nack {
			t.Nacks++
			c.ctr.nackRetries.Inc()
			e.state = esWaiting
			e.nextTryAt = now + int64(c.cfg.RetryDelay)
			continue
		}
		e.state = esDone
		t.CompletedAt = now
		switch e.instr.Op {
		case isa.OpLoad, isa.OpAmoAdd, isa.OpAmoSwap:
			t.LoadValue = resp.Data // AMOs report the old value
		}
	}
}

// takeInflight removes and returns the entry owning request id, or nil.
func (c *Core) takeInflight(id int) *entry {
	for i, e := range c.inflight {
		if e.reqID == id {
			last := len(c.inflight) - 1
			c.inflight[i] = c.inflight[last]
			c.inflight[last] = nil
			c.inflight = c.inflight[:last]
			return e
		}
	}
	return nil
}

// newEntry pops a recycled ROB entry from the free list, or allocates one.
func (c *Core) newEntry() *entry {
	n := len(c.freeEntries)
	if n == 0 {
		return &entry{} //skipit:ignore hotalloc free-list miss allocates only during warmup; steady state recycles retired entries
	}
	e := c.freeEntries[n-1]
	c.freeEntries[n-1] = nil
	c.freeEntries = c.freeEntries[:n-1]
	*e = entry{}
	return e
}

func (c *Core) dispatch(now int64) {
	for n := 0; n < c.cfg.DispatchWidth && c.pc < c.prog.Len(); n++ {
		if len(c.rob) >= c.cfg.ROBEntries {
			return
		}
		in := c.prog.Instrs[c.pc]
		switch {
		case in.Op == isa.OpLoad:
			if c.ldqCount >= c.cfg.LDQEntries {
				return
			}
			c.ldqCount++
		case in.Op.IsStoreQueue():
			if c.stqCount >= c.cfg.STQEntries {
				return
			}
			c.stqCount++
		}
		e := c.newEntry()
		e.instrIdx = c.pc
		e.instr = in
		if in.Op == isa.OpNop {
			e.state = esDone
			c.timings[c.pc].CompletedAt = now
		}
		c.timings[c.pc].DispatchedAt = now
		c.rob = append(c.rob, e) //skipit:ignore hotalloc ROB is capacity-bounded by cfg.ROBEntries; append reuses its backing after warmup
		c.pc++
	}
}

// issue fires ready requests into the data cache: any number of ready loads
// plus the in-order STQ head, bounded by MemWidth and the cache's accept
// width.
func (c *Core) issue(now int64) {
	fired := 0

	// The oldest unfinished STQ entry fires only from the ROB head
	// position: every older instruction must already be done (§3.2).
	if e := c.stqHead(); e != nil {
		switch {
		case e.instr.Op == isa.OpFence:
			c.tryCompleteFence(now, e)
		case e.state == esWaiting && now >= e.nextTryAt:
			if c.fire(now, e) {
				fired++
			}
		}
	}

	for _, e := range c.rob {
		if fired >= c.cfg.MemWidth {
			return
		}
		if e.instr.Op != isa.OpLoad || e.state != esWaiting || now < e.nextTryAt {
			continue
		}
		if v, forwarded, blocked := c.loadForward(e); blocked {
			continue
		} else if forwarded {
			e.state = esDone
			c.timings[e.instrIdx].CompletedAt = now
			c.timings[e.instrIdx].LoadValue = v
			continue
		}
		if c.fire(now, e) {
			fired++
		}
	}
}

// stqHead returns the oldest unfinished STQ entry provided every older
// instruction is done — i.e. the ROB head effectively points at it (§3.2).
func (c *Core) stqHead() *entry {
	for _, e := range c.rob {
		if e.state == esDone {
			continue
		}
		if e.instr.Op.IsStoreQueue() {
			return e
		}
		return nil // an older load is still in flight
	}
	return nil
}

// tryCompleteFence completes a fence when all older work is done (implied by
// ROB-head position) and no CBO.X is pending in the flush unit (§5.3).
//
// Drain-stall accounting is fast-forward aware: once a fence has latched its
// first stall cycle, no new request can reach the flush unit (nothing younger
// fires past a waiting fence), so any cycles the clock skipped since the
// previous tick were provably identical stalls and are attributed in bulk —
// the counter matches single-stepping exactly.
func (c *Core) tryCompleteFence(now int64, e *entry) {
	delta := uint64(now - c.prevTick) // 1 unless cycles were fast-forwarded
	if c.dc.Flushing() {
		if e.stalling {
			c.ctr.fenceDrainStalls.Add(delta)
		} else {
			e.stalling = true
			c.ctr.fenceDrainStalls.Inc()
		}
		return
	}
	if e.stalling {
		// The drain finished during the cycle now being ticked; cycles
		// skipped since the previous tick were still stalls.
		c.ctr.fenceDrainStalls.Add(delta - 1)
	}
	e.state = esDone
	c.timings[e.instrIdx].CompletedAt = now
	if c.timings[e.instrIdx].IssuedAt < 0 {
		c.timings[e.instrIdx].IssuedAt = now
	}
}

// loadForward checks the older STQ entries for the §3.2 forwarding and
// dependency rules. It returns the forwarded value, whether forwarding
// happened, and whether the load is blocked.
func (c *Core) loadForward(e *entry) (val uint64, forwarded, blocked bool) {
	wordAddr := e.instr.Addr &^ 7
	lineAddr := e.instr.Addr &^ (c.dc.Config().LineBytes - 1)
	var fwd *entry
	for _, o := range c.rob {
		if o == e {
			break
		}
		if !o.instr.Op.IsStoreQueue() {
			continue
		}
		switch o.instr.Op {
		case isa.OpFence:
			if o.state != esDone {
				return 0, false, true
			}
		case isa.OpStore:
			if o.instr.Addr&^7 == wordAddr {
				fwd = o
			}
		case isa.OpAmoAdd, isa.OpAmoSwap:
			// The value an AMO leaves behind is unknown until it
			// executes; a younger load to the same word must wait
			// and then read the cache.
			if o.instr.Addr&^7 == wordAddr {
				if o.state != esDone {
					return 0, false, true
				}
				fwd = nil // read the post-AMO value from the cache
			}
		case isa.OpCboClean, isa.OpCboFlush:
			// §5.3: loads dependent on a CBO.X proceed only after
			// it is buffered (done).
			if o.state != esDone && o.instr.Addr&^(c.dc.Config().LineBytes-1) == lineAddr {
				return 0, false, true
			}
		}
	}
	if fwd != nil {
		return fwd.instr.Data, true, false
	}
	return 0, false, false
}

// fire submits a request to the data cache.
func (c *Core) fire(now int64, e *entry) bool {
	kind := l1.Load
	switch e.instr.Op {
	case isa.OpStore:
		kind = l1.Store
	case isa.OpCboClean:
		kind = l1.CboClean
	case isa.OpCboFlush:
		kind = l1.CboFlush
	case isa.OpCflushDL1:
		kind = l1.CflushDL1
	case isa.OpAmoAdd:
		kind = l1.AmoAdd
	case isa.OpAmoSwap:
		kind = l1.AmoSwap
	}
	req := l1.Req{ID: c.nextReqID, Kind: kind, Addr: e.instr.Addr, Data: e.instr.Data}
	if !c.dc.Submit(now, req) {
		return false
	}
	c.nextReqID++
	e.reqID = req.ID
	c.inflight = append(c.inflight, e) //skipit:ignore hotalloc inflight is bounded by the ROB size; append reuses its backing after warmup
	e.state = esIssued
	if c.timings[e.instrIdx].IssuedAt < 0 {
		c.timings[e.instrIdx].IssuedAt = now
	}
	return true
}

// NextEvent reports the earliest future cycle at which the core can change
// state without external input, for the fast-forward clock. Conservative
// (earlier) answers are always safe; the rules below return now+1 for every
// state in which the core acts each cycle, and a concrete wake-up time for
// pure timer waits (nack retries). Entries waiting on the data cache are
// covered by the cache's own NextEvent (its response queue readyAt is the
// event), entries blocked behind older instructions by the events that
// retire those instructions, and a fence stalling on the flush-unit drain by
// the flush unit's (and memory's) own events — tryCompleteFence attributes
// the skipped stall cycles in bulk.
//
//skipit:hotpath
func (c *Core) NextEvent(now int64) int64 {
	if c.done || c.prog == nil {
		return tilelink.NoEvent
	}
	// Anything dispatchable keeps the front end active every cycle.
	if c.pc < c.prog.Len() && len(c.rob) < c.cfg.ROBEntries {
		in := c.prog.Instrs[c.pc]
		roomOK := true
		switch {
		case in.Op == isa.OpLoad:
			roomOK = c.ldqCount < c.cfg.LDQEntries
		case in.Op.IsStoreQueue():
			roomOK = c.stqCount < c.cfg.STQEntries
		}
		if roomOK {
			return now + 1
		}
	}
	if len(c.rob) > 0 && c.rob[0].state == esDone {
		return now + 1 // commit retires from the head next cycle
	}
	next := tilelink.NoEvent
	head := c.stqHead()
	for _, e := range c.rob {
		switch e.state {
		case esIssued:
			// Waiting on the data cache; the cache reports that event.
		case esDone:
			// Inert unless at the ROB head (checked above).
		case esWaiting:
			if e.instr.Op == isa.OpFence {
				if e != head {
					// Gated until every older instruction retires; the
					// events completing those cover the wake-up.
					continue
				}
				if e.stalling && c.dc.Flushing() {
					// Stalling on the drain. Nothing younger can feed the
					// flush unit past a waiting fence, so the stall ends
					// only on a flush-unit/memory event; tryCompleteFence
					// bulk-counts the cycles in between.
					continue
				}
				// Completes, or latches its first stall count, next cycle.
				return now + 1
			}
			if e.nextTryAt > now {
				if e.nextTryAt < next {
					next = e.nextTryAt
				}
				continue
			}
			if e == head {
				return now + 1 // the STQ head fires next cycle
			}
			if e.instr.Op == isa.OpLoad {
				if _, _, blocked := c.loadForward(e); !blocked {
					return now + 1 // fires (or forwards) next cycle
				}
				// Blocked by an older fence/AMO/CBO (§3.2); only that
				// entry's completion unblocks it, and the events driving
				// that completion are reported elsewhere.
				continue
			}
			// A ready store/AMO/CBO behind the STQ head fires only once
			// every older instruction is done; those events cover it.
		}
	}
	return next
}

// Committed returns the number of retired instructions; the watchdog reads
// it as the core's forward-progress signal.
func (c *Core) Committed() uint64 { return c.ctr.committed.Value() }

// CoreDebug snapshots the core's ROB/LSU state for hang reports.
type CoreDebug struct {
	Done      bool   `json:"done"`
	PC        int    `json:"pc"`
	ROB       int    `json:"rob"`
	ROBHead   string `json:"rob_head,omitempty"`
	LDQ       int    `json:"ldq"`
	STQ       int    `json:"stq"`
	Inflight  int    `json:"inflight"`
	Committed uint64 `json:"committed"`
}

// Debug returns the core's state snapshot.
func (c *Core) Debug() CoreDebug {
	dbg := CoreDebug{
		Done:      c.done,
		PC:        c.pc,
		ROB:       len(c.rob),
		LDQ:       c.ldqCount,
		STQ:       c.stqCount,
		Inflight:  len(c.inflight),
		Committed: c.ctr.committed.Value(),
	}
	if len(c.rob) > 0 {
		e := c.rob[0]
		dbg.ROBHead = fmt.Sprintf("%v addr=%#x state=%d idx=%d", e.instr.Op, e.instr.Addr, e.state, e.instrIdx)
	}
	return dbg
}

// commit retires done instructions from the ROB head, in order.
func (c *Core) commit(now int64) {
	for n := 0; n < c.cfg.CommitWidth && len(c.rob) > 0; n++ {
		e := c.rob[0]
		if e.state != esDone {
			return
		}
		c.timings[e.instrIdx].CommittedAt = now
		c.ctr.committed.Inc()
		switch {
		case e.instr.Op == isa.OpLoad:
			c.ldqCount--
		case e.instr.Op.IsStoreQueue():
			c.stqCount--
		}
		copy(c.rob, c.rob[1:])
		c.rob[len(c.rob)-1] = nil
		c.rob = c.rob[:len(c.rob)-1]
		// Retired entries are never referenced again (inflight only holds
		// issued, not-yet-done entries); recycle the struct.
		c.freeEntries = append(c.freeEntries, e) //skipit:ignore hotalloc entry free list is bounded by the ROB size; append reuses its backing after warmup
		if c.pc >= c.prog.Len() && len(c.rob) == 0 {
			c.done = true
			c.doneAt = now
			return
		}
	}
}
