// Package staleignore implements dead-waiver detection: a
// //skipit:ignore directive whose named analyzer no longer reports anything
// on the covered line is itself a finding.
//
// The waiver audit trail only works if every directive in the tree still
// corresponds to a live, consciously-suppressed diagnostic. When the code
// under a waiver is rewritten — the allocation removed, the clock read
// deleted, the lock reordered — the directive rots: it documents a decision
// about code that no longer exists, and it will silently swallow the NEXT
// diagnostic that happens to land on its line. This analyzer requires every
// other analyzer in the suite (so they have all run over the package by the
// time it executes), then asks the suppress layer which directives actually
// suppressed something; well-formed directives that never fired are
// reported, as are directives naming an analyzer that does not exist (a
// typo leaves the intended diagnostic live AND dangles a dead comment).
//
// Reasonless directives are skipped here — the named analyzer already
// reports those itself — and directives naming staleignore are honored like
// any other waiver, giving a grace period during refactors.
package staleignore

import (
	"fmt"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"skipit/internal/analysis/determinism"
	"skipit/internal/analysis/detflow"
	"skipit/internal/analysis/hotalloc"
	"skipit/internal/analysis/lockorder"
	"skipit/internal/analysis/metricname"
	"skipit/internal/analysis/nextevent"
	"skipit/internal/analysis/poolown"
	"skipit/internal/analysis/shardiso"
	"skipit/internal/analysis/suppress"
)

var Analyzer = &analysis.Analyzer{
	Name: "staleignore",
	Doc: "report //skipit:ignore directives whose diagnostic no longer fires on the covered line\n\n" +
		"Dead waivers rot the audit trail and silently swallow the next diagnostic on their line. " +
		"Must run after the rest of the suite; its Requires list guarantees that.",
	Requires: []*analysis.Analyzer{
		determinism.Analyzer,
		detflow.Analyzer,
		hotalloc.Analyzer,
		shardiso.Analyzer,
		lockorder.Analyzer,
		poolown.Analyzer,
		nextevent.Analyzer,
		metricname.Analyzer,
	},
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	suppress.Apply(pass)

	known := map[string]bool{pass.Analyzer.Name: true}
	var names []string
	for _, req := range pass.Analyzer.Requires {
		known[req.Name] = true
		names = append(names, req.Name)
	}
	sort.Strings(names)

	for _, d := range suppress.Collect(pass) {
		if d.Analyzer == "" || d.Reason == "" {
			continue // the named analyzer reports malformed directives itself
		}
		if d.Analyzer == pass.Analyzer.Name {
			continue // a staleignore waiver is handled by suppress.Apply above
		}
		if !known[d.Analyzer] {
			pass.Report(analysis.Diagnostic{
				Pos: d.Pos,
				Message: fmt.Sprintf("skipit:ignore names unknown analyzer %q (known: %s); the intended diagnostic is NOT suppressed",
					d.Analyzer, strings.Join(names, ", ")),
			})
			continue
		}
		if !suppress.Used(d.File, d.Target(), d.Analyzer) {
			pass.Report(analysis.Diagnostic{
				Pos: d.Pos,
				Message: fmt.Sprintf("stale waiver: %s no longer suppresses any %s diagnostic on this line — delete it (reason was: %s)",
					suppress.Prefix, d.Analyzer, d.Reason),
			})
		}
	}
	return nil, nil
}
