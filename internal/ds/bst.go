package ds

import (
	"sync/atomic"

	"skipit/internal/memsim"
	"skipit/internal/persist"
)

// Sentinel keys above every insertable key (KeyMax), ordered
// inf0 < inf1 < inf2 as in Natarajan–Mittal.
const (
	bstInf0 = KeyMax + 1
	bstInf1 = KeyMax + 2
	bstInf2 = KeyMax + 3
)

// bstEdge is a child pointer with the algorithm's two control bits: flag
// marks the leaf below the edge as being deleted, tag fixes the edge while
// its parent internal node is being removed. The triple is swapped
// atomically behind one pointer — this is the trick that makes
// link-and-persist inapplicable to the BST (§7.4): the algorithm already
// owns the pointer's spare bits.
type bstEdge struct {
	node *bstNode
	flag bool
	tag  bool
}

type bstNode struct {
	key    uint64
	addr   uint64
	isLeaf bool
	left   atomic.Pointer[bstEdge]
	right  atomic.Pointer[bstEdge]
}

func (n *bstNode) leftAddr() uint64  { return n.addr + 8 }
func (n *bstNode) rightAddr() uint64 { return n.addr + 16 }

// edgeSel identifies which child edge of a node, for address accounting.
func (t *BST) edgeField(n *bstNode, key uint64) (*atomic.Pointer[bstEdge], uint64) {
	if key < n.key {
		return &n.left, n.leftAddr()
	}
	return &n.right, n.rightAddr()
}

// BST is a lock-free external binary search tree in the style of Natarajan &
// Mittal [PPoPP'14]: keys live in leaves, internal nodes route, deletion
// flags the leaf's incoming edge, tags the sibling edge, and splices the
// sibling into the grandparent with one CAS. Conflicting operations help.
type BST struct {
	Common
	root *bstNode // R, key inf2
	s    *bstNode // S, key inf1
}

// NewBST builds the three-sentinel initial tree.
func NewBST(env *persist.Env, alloc *memsim.Allocator) *BST {
	t := &BST{Common: NewCommon(env, alloc)}
	leaf0 := t.newLeaf(bstInf0)
	leaf1 := t.newLeaf(bstInf1)
	leaf2 := t.newLeaf(bstInf2)
	t.s = t.newInternal(bstInf1, leaf0, leaf1)
	t.root = t.newInternal(bstInf2, t.s, leaf2)
	return t
}

// Name identifies the structure in benchmark output.
func (t *BST) Name() string { return NameBST }

func (t *BST) newLeaf(key uint64) *bstNode {
	return &bstNode{key: key, addr: t.allocNode(1), isLeaf: true}
}

func (t *BST) newInternal(key uint64, left, right *bstNode) *bstNode {
	n := &bstNode{key: key, addr: t.allocNode(3)}
	n.left.Store(&bstEdge{node: left})
	n.right.Store(&bstEdge{node: right})
	return n
}

// seekRec is the four-pointer record the search returns: ancestor holds the
// last untagged edge on the path (to successor); parent holds the edge to
// the leaf.
type seekRec struct {
	ancestor  *bstNode
	successor *bstNode
	parent    *bstNode
	leaf      *bstNode
}

func (t *BST) seek(tid int, key uint64) seekRec {
	sr := seekRec{ancestor: t.root, successor: t.s, parent: t.s}
	t.env.ReadTraverse(tid, t.root.leftAddr())
	edge := t.s.left.Load()
	t.env.ReadTraverse(tid, t.s.leftAddr())
	child := edge.node
	for !child.isLeaf {
		if !edge.tag {
			sr.ancestor = sr.parent
			sr.successor = child
		}
		sr.parent = child
		f, faddr := t.edgeField(child, key)
		t.env.ReadTraverse(tid, faddr)
		edge = f.Load()
		child = edge.node
	}
	sr.leaf = child
	t.env.ReadCritical(tid, sr.leaf.addr)
	return sr
}

// Insert adds key; it reports false if already present.
func (t *BST) Insert(tid int, key uint64) bool {
	checkKey(key)
	for {
		sr := t.seek(tid, key)
		if sr.leaf.key == key {
			t.env.EndOp(tid, false)
			return false
		}
		// Build the replacement subtree: a new internal node over the
		// existing leaf and the new leaf.
		newLeaf := t.newLeaf(key)
		var internal *bstNode
		if key < sr.leaf.key {
			internal = t.newInternal(sr.leaf.key, newLeaf, sr.leaf)
		} else {
			internal = t.newInternal(key, sr.leaf, newLeaf)
		}
		t.env.Write(tid, newLeaf.addr)
		t.env.Write(tid, internal.addr)
		t.env.Write(tid, internal.leftAddr())
		t.env.Write(tid, internal.rightAddr())
		t.env.FlushNew(tid, newLeaf.addr)
		t.env.FlushNew(tid, internal.addr)

		field, faddr := t.edgeField(sr.parent, key)
		old := field.Load()
		if old.node != sr.leaf {
			continue
		}
		if old.flag || old.tag {
			// A deletion is in progress here; help it finish.
			t.cleanup(tid, key, sr)
			continue
		}
		if field.CompareAndSwap(old, &bstEdge{node: internal}) {
			t.env.WriteCommit(tid, faddr)
			t.env.EndOp(tid, true)
			return true
		}
		cur := field.Load()
		if cur.node == sr.leaf && (cur.flag || cur.tag) {
			t.cleanup(tid, key, sr)
		}
	}
}

// Delete removes key; it reports false if absent. It runs the two-mode
// protocol: injection flags the leaf's edge (the linearization point), then
// cleanup — possibly helped by others — splices the leaf and its parent out.
func (t *BST) Delete(tid int, key uint64) bool {
	checkKey(key)
	injecting := true
	var leaf *bstNode
	for {
		sr := t.seek(tid, key)
		if injecting {
			leaf = sr.leaf
			if leaf.key != key {
				t.env.EndOp(tid, false)
				return false
			}
			field, faddr := t.edgeField(sr.parent, key)
			old := field.Load()
			if old.node != leaf {
				continue
			}
			if old.flag || old.tag {
				// Another operation owns this edge; help and retry.
				t.cleanup(tid, key, sr)
				continue
			}
			if field.CompareAndSwap(old, &bstEdge{node: leaf, flag: true}) {
				t.env.WriteCommit(tid, faddr)
				injecting = false
				if t.cleanup(tid, key, sr) {
					t.env.EndOp(tid, true)
					return true
				}
				continue
			}
			cur := field.Load()
			if cur.node == leaf && (cur.flag || cur.tag) {
				t.cleanup(tid, key, sr)
			}
			continue
		}
		// Cleanup mode: we own the flag; retry until the splice lands or
		// someone else completes it for us.
		if sr.leaf != leaf {
			t.env.EndOp(tid, true)
			return true // helped to completion
		}
		if t.cleanup(tid, key, sr) {
			t.env.EndOp(tid, true)
			return true
		}
	}
}

// cleanup splices out sr.parent and the flagged leaf: tag the sibling edge
// so it cannot change, then swing the ancestor's edge from successor to the
// sibling (preserving the sibling's own flag). It reports whether the splice
// CAS succeeded.
func (t *BST) cleanup(tid int, key uint64, sr seekRec) bool {
	successorField, sfAddr := t.edgeField(sr.ancestor, key)
	childField, childAddr := t.edgeField(sr.parent, key)
	var siblingField *atomic.Pointer[bstEdge]
	var sibAddr uint64
	if key < sr.parent.key {
		siblingField, sibAddr = &sr.parent.right, sr.parent.rightAddr()
	} else {
		siblingField, sibAddr = &sr.parent.left, sr.parent.leftAddr()
	}
	ce := childField.Load()
	if !ce.flag {
		// The deletion being helped flagged the other edge: its victim
		// is our "sibling"; swap roles.
		siblingField, sibAddr = childField, childAddr
	}
	// Tag the sibling edge so the subtree we are about to promote is
	// fixed.
	for {
		se := siblingField.Load()
		if se.tag {
			break
		}
		if siblingField.CompareAndSwap(se, &bstEdge{node: se.node, flag: se.flag, tag: true}) {
			t.env.WriteCommit(tid, sibAddr)
			break
		}
	}
	se := siblingField.Load()
	old := successorField.Load()
	if old.node != sr.successor || old.flag || old.tag {
		return false
	}
	// Promote the sibling subtree, preserving its flag bit (a concurrent
	// delete of the sibling leaf keeps its claim).
	if successorField.CompareAndSwap(old, &bstEdge{node: se.node, flag: se.flag}) {
		t.env.WriteCommit(tid, sfAddr)
		return true
	}
	return false
}

// Contains reports membership.
func (t *BST) Contains(tid int, key uint64) bool {
	checkKey(key)
	sr := t.seek(tid, key)
	found := sr.leaf.key == key
	t.env.EndOp(tid, false)
	return found
}
