// Package pdes implements the conservative-lookahead parallel
// discrete-event scheduler behind sim's -parallel mode.
//
// The simulated SoC is partitioned into shards — each core plus its private
// L1 (and flush unit) in one shard, the L2 plus DRAM controller in a hub
// shard — whose only coupling is the TileLink ports between them. A message
// sent on a link at cycle t is receivable no earlier than t + beats +
// latency >= t + 1 + latency, so if every shard's next self-generated event
// lies at or after cycle G, no cross-shard influence can land before
// horizon h = G + 1 + latency. Inside the window [now, h) each shard may
// therefore tick (and locally fast-forward) completely independently; the
// shards rendezvous at a barrier, staged link messages are published in a
// fixed (port index, channel, send order) sequence, and the next window
// begins. Every tick observes exactly the state it would have observed
// under serial stepping, which is what makes the parallel results
// bit-identical for any worker count — the scheduling proof lives in
// DESIGN.md.
//
// The engine itself is deliberately dumb: it owns worker goroutines, the
// spin barrier, and the horizon fold, while the sim layer supplies the
// shards and runs all cross-shard bookkeeping (link commits, pool
// rebalancing, samplers, watchdog, exit detection) in the single-threaded
// barrier callback.
package pdes

import (
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"skipit/internal/metrics"
	"skipit/internal/tilelink"
)

// Shard is one independently advancing partition of the SoC.
//
// RunWindow ticks the shard over [from, to): it folds its own components'
// NextEvent to fast-forward locally, and must touch no state owned by
// another shard — its TileLink sends go to producer-side staging
// (tilelink.Link deferred mode) and its receives only consume messages
// published at or before the last barrier. NextEvent is the shard-local
// fold used for the global horizon; it is called at barriers only.
type Shard interface {
	RunWindow(from, to int64)
	NextEvent(last int64) int64
}

// ShardPanic carries a panic raised inside a shard's RunWindow across the
// barrier to the coordinator. The sim layer's guarded paths unwrap it so
// hang reports show the original panic value and the panicking goroutine's
// stack. When several shards panic in one window the lowest shard index
// wins, independent of worker count.
type ShardPanic struct {
	Shard int
	Val   any
	Stack []byte
}

// Engine schedules shards across a fixed set of workers with a spin
// barrier. Windows are driven from a Session callback; the calling
// goroutine doubles as worker 0, so workers == 1 runs fully inline with no
// goroutines at all (the -parallel=1 degenerate case used to pin
// bit-identity without host concurrency).
//
// Engine state is coordinator-owned: shard code never touches it during a
// window.
//
//skipit:shard-owned barrier
type Engine struct {
	shards    []Shard
	workers   int
	lookahead int64

	ctrWindows      *metrics.Counter
	ctrBarrierWaits *metrics.Counter
	histHorizon     *metrics.Histogram

	// Sampled per-shard busy time: every 16th window is timed per shard,
	// giving a cheap, host-only estimate of each shard's throughput for the
	// pdes.* derived snapshot keys. Never read by simulated state.
	shardNanos    []int64
	sampledCycles int64

	// Barrier state. from/to are published before the epoch increment
	// (release) and read by workers after observing it (acquire); active
	// counts workers still inside the window.
	epoch  atomic.Uint64
	active atomic.Int64
	quit   atomic.Bool
	from   int64
	to     int64

	// panics has one slot per worker, written only by that worker inside a
	// window and drained by the coordinator at the barrier.
	panics []*ShardPanic

	wg sync.WaitGroup
}

// New builds an engine over the given shards. workers is clamped to
// [1, len(shards)]; lookahead is the minimum cross-shard delivery delay
// (1 + link latency): a horizon of fold+lookahead is safe. Metrics are
// registered in reg (nil gets a private registry).
func New(shards []Shard, workers int, lookahead int64, reg *metrics.Registry) *Engine {
	if len(shards) == 0 {
		panic("pdes: no shards")
	}
	if lookahead < 1 {
		panic("pdes: lookahead must be at least 1 cycle")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Engine{
		shards:          shards,
		workers:         workers,
		lookahead:       lookahead,
		ctrWindows:      reg.Counter("pdes", "windows"),
		ctrBarrierWaits: reg.Counter("pdes", "barrier_waits"),
		histHorizon:     reg.Histogram("pdes", "horizon_cycles", nil),
		shardNanos:      make([]int64, len(shards)),
		panics:          make([]*ShardPanic, workers),
	}
}

// Workers returns the resolved worker count.
func (e *Engine) Workers() int { return e.workers }

// Lookahead returns the minimum cross-shard delivery delay in cycles.
func (e *Engine) Lookahead() int64 { return e.lookahead }

// Horizon folds every shard's NextEvent(last) and adds the lookahead: the
// exclusive upper bound of the next safe window. Returns tilelink.NoEvent
// when every shard is idle (callers clamp to their deadline). Single
// threaded; call only at a barrier.
func (e *Engine) Horizon(last int64) int64 {
	g := tilelink.NoEvent
	for _, sh := range e.shards {
		if t := sh.NextEvent(last); t < g {
			g = t
		}
	}
	if g >= tilelink.NoEvent {
		return tilelink.NoEvent
	}
	return g + e.lookahead
}

// Session runs fn with a window function that advances every shard over
// [from, to) in parallel and returns once all have rendezvoused. Worker
// goroutines live for the duration of fn and are joined before Session
// returns, so a Session leaves no concurrency behind — callers may freely
// serial-step the system between Sessions. If a shard panicked during a
// window, the window call re-panics with a *ShardPanic.
func (e *Engine) Session(fn func(window func(from, to int64))) {
	if e.workers == 1 {
		fn(e.windowInline)
		return
	}
	e.quit.Store(false)
	for w := 1; w < e.workers; w++ {
		e.wg.Add(1)
		// Seed each worker with the epoch as of its spawn: the counter
		// persists across Sessions, and a worker starting from 0 would
		// mistake the inherited value for a pending window and run the
		// previous session's stale bounds.
		go e.workerLoop(w, e.epoch.Load()) //skipit:parallel-scheduler conservative-lookahead PDES workers; shards share no state and rendezvous at the spin barrier
	}
	defer func() {
		e.quit.Store(true)
		e.epoch.Add(1)
		e.wg.Wait()
	}()
	fn(e.window)
}

// windowInline is the workers==1 window: every shard on the calling
// goroutine, in shard order.
func (e *Engine) windowInline(from, to int64) {
	e.runShards(0, from, to)
	e.finishWindow(from, to)
}

// window publishes the bounds, releases the workers, runs worker 0's own
// shards, then spins until every worker has checked in.
func (e *Engine) window(from, to int64) {
	e.from, e.to = from, to
	e.active.Store(int64(e.workers - 1))
	e.epoch.Add(1)
	e.runShards(0, from, to)
	waited := false
	for i := 0; e.active.Load() != 0; i++ {
		waited = true
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
	if waited {
		e.ctrBarrierWaits.Inc()
	}
	e.finishWindow(from, to)
}

func (e *Engine) finishWindow(from, to int64) {
	e.ctrWindows.Inc()
	e.histHorizon.Observe(uint64(to - from))
	var worst *ShardPanic
	for w, p := range e.panics {
		if p != nil {
			e.panics[w] = nil
			if worst == nil || p.Shard < worst.Shard {
				worst = p
			}
		}
	}
	if worst != nil {
		panic(worst)
	}
}

func (e *Engine) workerLoop(w int, last uint64) {
	defer e.wg.Done()
	for {
		cur := e.epoch.Load()
		if cur == last {
			runtime.Gosched()
			continue
		}
		last = cur
		if e.quit.Load() {
			return
		}
		e.runShards(w, e.from, e.to)
		e.active.Add(-1)
	}
}

// runShards advances worker w's statically assigned shards (w, w+W, ...).
// Static assignment keeps per-shard state (pools, txn sequences, free
// lists) on a stable worker, which is cache-friendly and — more
// importantly — irrelevant to results: shards share nothing mid-window.
func (e *Engine) runShards(w int, from, to int64) {
	timed := e.ctrWindows.Value()&0xf == 0
	for i := w; i < len(e.shards); i += e.workers {
		if !e.runOne(w, i, from, to, timed) {
			return // shard panicked; abandon the rest of this worker's window
		}
	}
	if timed && w == 0 {
		e.sampledCycles += to - from
	}
}

func (e *Engine) runOne(w, i int, from, to int64, timed bool) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if e.panics[w] == nil {
				e.panics[w] = &ShardPanic{Shard: i, Val: r, Stack: stack()}
			}
			ok = false
		}
	}()
	if timed {
		t0 := time.Now() //skipit:ignore determinism host-side sampled shard timer, never read by simulated state
		e.shards[i].RunWindow(from, to)
		e.shardNanos[i] += time.Since(t0).Nanoseconds() //skipit:ignore determinism host-side sampled shard timer, never read by simulated state
		return true
	}
	e.shards[i].RunWindow(from, to)
	return true
}

func stack() []byte { return debug.Stack() }

// ShardNanos returns the sampled per-shard busy nanos (host telemetry; see
// shardNanos). Call only between Sessions or at a barrier.
func (e *Engine) ShardNanos() []int64 { return e.shardNanos }

// SampledCycles returns the simulated cycles covered by the timed windows.
func (e *Engine) SampledCycles() int64 { return e.sampledCycles }

// Windows returns the number of windows run so far.
func (e *Engine) Windows() uint64 { return e.ctrWindows.Value() }
