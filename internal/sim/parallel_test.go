package sim

import (
	"reflect"
	"testing"

	"skipit/internal/isa"
)

// parWorkload is a four-core mix of store bursts, clean/flush traffic, AMOs
// and idle stretches — enough cross-shard coherence traffic (shared lines,
// L2 probes) to exercise every window/barrier path.
func parWorkload() []*isa.Program {
	p0 := isa.NewBuilder().
		StoreRegion(0x1000, 16*64, 64, 7).CboRegionLoop(0x1000, 16*64, 64, true, 2).
		Load(0x40000).AmoAdd(0x40000, 3).Nops(120).
		Load(0x2000).Store(0x2000, 9).CboFlush(0x2000).Fence().Build()
	p1 := isa.NewBuilder().
		Load(0x1000).Store(0x1040, 5).Nops(40).
		AmoSwap(0x40000, 11).StoreRegion(0x8000, 8, 64, 2).
		CboClean(0x8000).Fence().Build()
	p2 := isa.NewBuilder().
		Nops(300).Load(0x40000).Store(0x40040, 1).
		CboClean(0x40040).Load(0x1040).Fence().Build()
	p3 := isa.NewBuilder().
		Store(0x90000, 4).CboFlush(0x90000).Nops(10).
		Load(0x90000).CflushDL1(0x90000).Fence().Build()
	return []*isa.Program{p0, p1, p2, p3}
}

// runParWorkload runs progs on a fresh system with the given worker count
// (0 = serial) and returns the system and finish cycle.
func runParWorkload(t *testing.T, progs []*isa.Program, workers int, sampleEvery int64) (*System, int64) {
	t.Helper()
	cfg := DefaultConfig(len(progs))
	cfg.Parallel = workers
	s := New(cfg)
	if sampleEvery > 0 {
		s.EnableSampling(sampleEvery)
	}
	cycle, err := s.Run(progs, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return s, cycle
}

// hostOnlySeries reports series keys excluded from cross-mode comparison,
// mirroring StripHostOnly.
func hostOnlySeries(key string) bool {
	return key == "sim.skipped_cycles" ||
		len(key) > 5 && key[:5] == "pool." ||
		len(key) > 5 && key[:5] == "pdes."
}

func series(s *System) map[string][]uint64 {
	out := map[string][]uint64{}
	for _, sr := range s.Snapshot().Series {
		if hostOnlySeries(sr.Key) {
			continue
		}
		out[sr.Key] = sr.Values
	}
	return out
}

// assertSystemsEqual compares every bit-identity observable of two finished
// systems: final clock, stripped counters, per-core instruction timings, and
// sampled series.
func assertSystemsEqual(t *testing.T, label string, a, b *System) {
	t.Helper()
	if a.Now() != b.Now() {
		t.Fatalf("%s: clock differs: %d vs %d", label, a.Now(), b.Now())
	}
	snapA, snapB := a.Snapshot(), b.Snapshot()
	StripHostOnly(&snapA)
	StripHostOnly(&snapB)
	if !reflect.DeepEqual(snapA.Counters, snapB.Counters) {
		for k, v := range snapA.Counters {
			if w, ok := snapB.Counters[k]; !ok || v != w {
				t.Errorf("%s: counter %s: %d vs %d", label, k, v, w)
			}
		}
		for k := range snapB.Counters {
			if _, ok := snapA.Counters[k]; !ok {
				t.Errorf("%s: counter %s only in second system", label, k)
			}
		}
		t.Fatalf("%s: counters diverged", label)
	}
	for i := range a.Cores {
		if !reflect.DeepEqual(a.Cores[i].Timings(), b.Cores[i].Timings()) {
			t.Fatalf("%s: core %d timings diverged", label, i)
		}
	}
	if !reflect.DeepEqual(series(a), series(b)) {
		t.Fatalf("%s: sampled series diverged", label)
	}
}

// TestParallelEquivalence: the parallel scheduler must be bit-identical to
// serial stepping — same Run return value, same final clock, same counters,
// same per-instruction timings, same sampled series — for every worker
// count.
func TestParallelEquivalence(t *testing.T) {
	serial, serialCycle := runParWorkload(t, parWorkload(), 0, 100)
	for _, workers := range []int{1, 2, 4} {
		par, parCycle := runParWorkload(t, parWorkload(), workers, 100)
		if parCycle != serialCycle {
			t.Fatalf("parallel=%d: finish cycle %d, serial %d", workers, parCycle, serialCycle)
		}
		assertSystemsEqual(t, "parallel vs serial", serial, par)
	}
}

// TestParallelEquivalenceTwoCore runs the fast-forward test workload (long
// idle stretches, flush round-trips) through the same matrix: idle-heavy
// shapes exercise the horizon clamps rather than the dense tick path.
func TestParallelEquivalenceTwoCore(t *testing.T) {
	serial, serialCycle := runParWorkload(t, ffWorkload(), 0, 50)
	for _, workers := range []int{1, 2, 4} {
		par, parCycle := runParWorkload(t, ffWorkload(), workers, 50)
		if parCycle != serialCycle {
			t.Fatalf("parallel=%d: finish cycle %d, serial %d", workers, parCycle, serialCycle)
		}
		assertSystemsEqual(t, "parallel vs serial (2-core)", serial, par)
	}
}

// TestParallelFastForwardOff pins the degenerate matrix corner: parallel
// windows with per-shard fast-forward disabled must still match serial
// single-stepping.
func TestParallelFastForwardOff(t *testing.T) {
	run := func(workers int) (*System, int64) {
		cfg := DefaultConfig(2)
		cfg.Parallel = workers
		s := New(cfg)
		s.SetFastForward(false)
		cycle, err := s.Run(ffWorkload(), 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return s, cycle
	}
	serial, serialCycle := run(0)
	par, parCycle := run(2)
	if parCycle != serialCycle {
		t.Fatalf("finish cycle %d, serial %d", parCycle, serialCycle)
	}
	assertSystemsEqual(t, "ff-off", serial, par)
	if par.SkippedCycles() != 0 {
		t.Fatalf("ff-off parallel system skipped %d cycles", par.SkippedCycles())
	}
}

// TestParallelDrain: Drain must land on the same cycle as serial, both from
// a busy state and when already quiescent.
func TestParallelDrain(t *testing.T) {
	run := func(workers int) *System {
		cfg := DefaultConfig(2)
		cfg.Parallel = workers
		s := New(cfg)
		if _, err := s.Run(ffWorkload(), 1_000_000); err != nil {
			t.Fatal(err)
		}
		// Start fresh traffic, then drain mid-flight.
		s.Cores[0].SetProgram(isa.NewBuilder().Store(0x7000, 1).CboClean(0x7000).Build())
		s.Cores[1].SetProgram(isa.NewBuilder().Build())
		for i := 0; i < 8; i++ {
			s.Step()
		}
		if err := s.Drain(100_000); err != nil {
			t.Fatal(err)
		}
		before := s.Now()
		if err := s.Drain(100_000); err != nil { // already quiescent: no-op
			t.Fatal(err)
		}
		if s.Now() != before {
			t.Fatalf("quiescent drain moved the clock %d -> %d", before, s.Now())
		}
		return s
	}
	serial := run(0)
	for _, workers := range []int{1, 2} {
		assertSystemsEqual(t, "drain", serial, run(workers))
	}
}

// TestParallelTimeout: a run that exceeds its cycle limit must report the
// timeout at the same cycle serial does.
func TestParallelTimeout(t *testing.T) {
	run := func(workers int) (int64, error) {
		cfg := DefaultConfig(1)
		cfg.Parallel = workers
		s := New(cfg)
		// Plenty of work, tiny limit.
		_, err := s.Run([]*isa.Program{parWorkload()[0]}, 40)
		return s.Now(), err
	}
	serialNow, serialErr := run(0)
	if serialErr == nil {
		t.Fatal("serial run did not time out")
	}
	for _, workers := range []int{1, 2} {
		now, err := run(workers)
		if err == nil {
			t.Fatalf("parallel=%d run did not time out", workers)
		}
		if now != serialNow {
			t.Fatalf("parallel=%d timed out at %d, serial at %d", workers, now, serialNow)
		}
		if err.Error() != serialErr.Error() {
			t.Fatalf("parallel=%d timeout %q, serial %q", workers, err, serialErr)
		}
	}
}

// TestParallelMixedStepping: serial Steps interleaved with parallel Runs on
// the same system must compose (deferred sends publish at each Step).
func TestParallelMixedStepping(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Parallel = 2
	s := New(cfg)
	s.Cores[0].SetProgram(isa.NewBuilder().Store(0x1000, 7).CboClean(0x1000).Build())
	s.Cores[1].SetProgram(isa.NewBuilder().Build())
	for i := 0; i < 50; i++ {
		s.Step()
	}
	if err := s.Drain(100_000); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ffWorkload(), 1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
