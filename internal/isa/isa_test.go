package isa

import "testing"

func TestOpcodePredicates(t *testing.T) {
	cases := []struct {
		op       Op
		mem, stq bool
	}{
		{OpNop, false, false},
		{OpLoad, true, false},
		{OpStore, true, true},
		{OpCboClean, true, true},
		{OpCboFlush, true, true},
		{OpFence, true, true},
	}
	for _, c := range cases {
		if got := c.op.IsMem(); got != c.mem {
			t.Errorf("%v.IsMem() = %v, want %v", c.op, got, c.mem)
		}
		if got := c.op.IsStoreQueue(); got != c.stq {
			t.Errorf("%v.IsStoreQueue() = %v, want %v", c.op, got, c.stq)
		}
	}
}

func TestBuilderSequence(t *testing.T) {
	p := NewBuilder().
		Store(0x10, 1).
		Load(0x18).
		CboClean(0x10).
		CboFlush(0x40).
		Fence().
		Nop().
		Build()
	want := []Op{OpStore, OpLoad, OpCboClean, OpCboFlush, OpFence, OpNop}
	if p.Len() != len(want) {
		t.Fatalf("len = %d, want %d", p.Len(), len(want))
	}
	for i, op := range want {
		if p.Instrs[i].Op != op {
			t.Errorf("instr %d = %v, want %v", i, p.Instrs[i].Op, op)
		}
	}
	if p.Instrs[0].Data != 1 || p.Instrs[0].Addr != 0x10 {
		t.Error("store operands lost")
	}
}

func TestCboSelector(t *testing.T) {
	p := NewBuilder().Cbo(0, true).Cbo(0, false).Build()
	if p.Instrs[0].Op != OpCboClean || p.Instrs[1].Op != OpCboFlush {
		t.Fatalf("Cbo() mapped wrong: %v %v", p.Instrs[0].Op, p.Instrs[1].Op)
	}
}

func TestRegionBuilders(t *testing.T) {
	p := NewBuilder().
		StoreRegion(0, 256, 64, 9).
		CboRegion(0, 256, 64, false).
		LoadRegion(0, 256, 64).
		Build()
	if p.Len() != 12 {
		t.Fatalf("len = %d, want 12 (4 lines x 3 phases)", p.Len())
	}
	for i := 0; i < 4; i++ {
		if p.Instrs[i].Addr != uint64(i)*64 {
			t.Errorf("store %d addr %#x", i, p.Instrs[i].Addr)
		}
		if p.Instrs[i].Data != 9 {
			t.Errorf("store %d data %d", i, p.Instrs[i].Data)
		}
		if p.Instrs[4+i].Op != OpCboFlush {
			t.Errorf("cbo %d op %v", i, p.Instrs[4+i].Op)
		}
		if p.Instrs[8+i].Op != OpLoad {
			t.Errorf("load %d op %v", i, p.Instrs[8+i].Op)
		}
	}
}

func TestCboRegionLoopAddsNops(t *testing.T) {
	p := NewBuilder().CboRegionLoop(0, 128, 64, true, 3).Build()
	if p.Len() != 2*(1+3) {
		t.Fatalf("len = %d, want 8", p.Len())
	}
	if p.Instrs[0].Op != OpCboClean || p.Instrs[1].Op != OpNop {
		t.Fatal("loop layout wrong")
	}
}

func TestMarkTracksNextIndex(t *testing.T) {
	b := NewBuilder()
	if b.Mark() != 0 {
		t.Fatal("fresh mark not 0")
	}
	b.Store(0, 1)
	m := b.Mark()
	if m != 1 {
		t.Fatalf("mark = %d, want 1", m)
	}
	b.Fence()
	p := b.Build()
	if p.Instrs[m].Op != OpFence {
		t.Fatal("mark does not index the next appended instruction")
	}
}

func TestInstrStrings(t *testing.T) {
	cases := map[string]Instr{
		"fence":          {Op: OpFence},
		"nop":            {Op: OpNop},
		"sd 0x10 <- 5":   {Op: OpStore, Addr: 0x10, Data: 5},
		"ld 0x20":        {Op: OpLoad, Addr: 0x20},
		"cbo.clean 0x40": {Op: OpCboClean, Addr: 0x40},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
