package tlctest

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"skipit/internal/detrand"
	"skipit/internal/linepool"
	"skipit/internal/metrics"
	"skipit/internal/tilelink"
	"skipit/internal/trace"
)

// OpKind names one scripted agent operation.
type OpKind string

const (
	OpAcquireB OpKind = "acquire-b" // acquire read permission (Branch)
	OpAcquireT OpKind = "acquire-t" // acquire write permission (Trunk)
	OpWrite    OpKind = "write"     // local write; acquires Trunk first if needed
	OpReleaseB OpKind = "release-b" // voluntary downgrade to Branch
	OpReleaseN OpKind = "release-n" // voluntary downgrade to None
	OpFlush    OpKind = "flush"     // RootReleaseFlush: invalidate locally, push to DRAM
	OpClean    OpKind = "clean"     // RootReleaseClean: keep permission, push to DRAM
	OpIdle     OpKind = "idle"      // sit out Delay cycles
)

// Op is one scripted agent operation. Addr indexes the episode's address
// universe (Script.Addrs), not a raw byte address, so scripts stay readable
// and the shrinker can drop ops without invalidating others.
type Op struct {
	Agent int    `json:"agent"`
	Kind  OpKind `json:"kind"`
	Addr  int    `json:"addr"`
	Val   uint64 `json:"val,omitempty"`    // write payload
	Delay int64  `json:"delay,omitempty"`  // idle cycles before dispatch
	HoldC int64  `json:"hold_c,omitempty"` // flush/clean: gap between local invalidate and queueing the RootRelease
}

// Bug holds the deliberate protocol-discipline mutations an episode can
// enable to prove the scoreboard catches the races the discipline prevents.
type Bug struct {
	// AcquireWhileReleasePending drops the rule that an Acquire for a block
	// must wait for that block's outstanding voluntary Release to be
	// acknowledged — the L1 race fixed in the nonblocking-miss PR. Without
	// the rule the L2 may grant stale data and then deregister a live copy.
	AcquireWhileReleasePending bool `json:"acquire_while_release_pending,omitempty"`

	// ProbeDuringFlushHold drops the §5.4.1 flush_rdy discipline: probes for
	// a block whose RootRelease is committed locally but not yet on the C
	// wire are answered from the already-invalidated state instead of being
	// deferred. The probe response then overtakes the held RootRelease, the
	// L2 evicts the line on the NtoN answer, and the flush data later
	// arrives for an absent line — the RootRelease-vs-eviction race the L2's
	// write-through branch exists to absorb.
	ProbeDuringFlushHold bool `json:"probe_during_flush_hold,omitempty"`
}

// agentBlock is an agent's local view of one address.
type agentBlock struct {
	addr  uint64
	perm  tilelink.Perm
	dirty bool
	val   uint64

	grantPending bool
	grantGrow    tilelink.Grow
	relPending   bool // voluntary Release issued, ack outstanding
	relSent      bool // ...and the message has actually left on C
	flushPending bool // RootRelease committed locally, ack outstanding
	flushSent    bool // ...and the message has actually left on C
	flushBuf     []byte
}

// outMsg is a queued outbound message: readyAt models the agent's internal
// pipeline delay before the message reaches the channel arbiter.
type outMsg struct {
	msg     tilelink.Msg
	readyAt int64
	release bool // voluntary Release*: mark relSent when it leaves
	rootrel bool // RootRelease*: mark flushSent when it leaves
	blk     int
}

// deferredProbe is a received Probe awaiting its response.
type deferredProbe struct {
	blk     int
	cap     tilelink.Cap
	txn     uint64
	readyAt int64
}

type agentPhase uint8

const (
	phDispatch agentPhase = iota // waiting to issue the current op
	phAwaitGrant
	phAwaitRelAck
	phHold // flush/clean local half done, HoldC window before queueing
	phAwaitFlushAck
)

// agentCounters aggregates traffic counters across all agents of an episode
// under the "tlc" metrics instance (the registry dedupes keys, so every
// agent shares the same counters).
type agentCounters struct {
	acquires *metrics.Counter
	grants   *metrics.Counter
	writes   *metrics.Counter
	releases *metrics.Counter
	flushes  *metrics.Counter
	probes   *metrics.Counter
}

func newAgentCounters(reg *metrics.Registry) agentCounters {
	return agentCounters{
		acquires: reg.Counter("tlc", "acquires"),
		grants:   reg.Counter("tlc", "grants"),
		writes:   reg.Counter("tlc", "writes"),
		releases: reg.Counter("tlc", "releases"),
		flushes:  reg.Counter("tlc", "flushes"),
		probes:   reg.Counter("tlc", "probes_answered"),
	}
}

// AgentConfig wires one agent to its port and the episode-shared machinery.
type AgentConfig struct {
	ID         int
	Port       *tilelink.ClientPort
	Pool       *linepool.Pool
	LineBytes  uint64
	Addrs      []uint64
	Ops        []Op // this agent's ops only, in program order
	Seed       int64
	Scoreboard *Scoreboard
	Txns       *trace.TxnSeq
	Tracer     trace.Tracer
	Bug        Bug
	// MemPeek reads the current DRAM value of an address, for the §5.5
	// durability check at RootReleaseAck time.
	MemPeek func(addr uint64) uint64
	// Durable, when non-nil, replaces the inline MemPeek+CheckDurable at
	// RootReleaseAck time with a deferred record. Parallel episodes set it:
	// DRAM belongs to the hub shard, so the agent may not peek it mid-window;
	// the barrier resolves the queued checks against the memory write journal
	// at the exact cycles a serial run would have peeked.
	Durable *DurableQueue
	Metrics *metrics.Registry
}

// Agent is a protocol-level TileLink master: it owns the client side of one
// ClientPort, executes its scripted ops one at a time, and reacts to probes
// at all times (even after its script is exhausted). All nondeterminism is
// drawn from a detrand child seed, so an episode replays byte-identically.
//
// The C channel is modelled as hardware models it: two internal queues — a
// high-priority one for probe responses and a low-priority one for voluntary
// Releases and RootReleases — feeding one arbiter. A probe response may
// overtake queued voluntary traffic for *other* blocks; for the probed block
// itself the §5.4.1 flush_rdy / wb_rdy discipline holds the response back
// until that block's pending Release or RootRelease is on the wire, so
// per-channel FIFO delivers the release data to the L2 first. The Bug knobs
// selectively revert those disciplines to make the PR 3 races reachable.
// Once a message is on the link, FIFO order is preserved.
type Agent struct {
	id        int
	name      string
	port      *tilelink.ClientPort
	pool      *linepool.Pool
	lineBytes uint64
	blocks    []agentBlock

	ops     []Op
	opIdx   int
	phase   agentPhase
	startAt int64 // earliest dispatch cycle of the current op

	holdMsg   tilelink.Msg
	holdBlk   int
	holdUntil int64

	pendingWrite bool
	writeVal     uint64

	rng     *rand.Rand
	sb      *Scoreboard
	txns    *trace.TxnSeq
	tr      trace.Tracer
	bug     Bug
	memPeek func(uint64) uint64
	durable *DurableQueue
	ctr     agentCounters

	outA      []outMsg
	outCProbe []outMsg
	outCReq   []outMsg
	outE      []outMsg
	probes    []deferredProbe
}

// NewAgent builds an agent from its config. It implements sim.FabricClient.
func NewAgent(cfg AgentConfig) *Agent {
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	a := &Agent{
		id:        cfg.ID,
		name:      fmt.Sprintf("tlc%d", cfg.ID),
		port:      cfg.Port,
		pool:      cfg.Pool,
		lineBytes: cfg.LineBytes,
		ops:       cfg.Ops,
		rng:       detrand.New(cfg.Seed),
		sb:        cfg.Scoreboard,
		txns:      cfg.Txns,
		tr:        cfg.Tracer,
		bug:       cfg.Bug,
		memPeek:   cfg.MemPeek,
		durable:   cfg.Durable,
		ctr:       newAgentCounters(cfg.Metrics),
	}
	for _, addr := range cfg.Addrs {
		a.blocks = append(a.blocks, agentBlock{addr: addr})
	}
	if len(a.ops) > 0 {
		a.startAt = a.ops[0].Delay
	}
	return a
}

func (a *Agent) blockIndex(addr uint64) int {
	for i := range a.blocks {
		if a.blocks[i].addr == addr {
			return i
		}
	}
	panic(fmt.Sprintf("tlctest: agent %d: message for unknown address %#x", a.id, addr))
}

// encode builds a full line carrying val in its first eight bytes. Pool
// buffers recycle dirty, so the tail is explicitly zeroed — the value
// checks decode only the head, but DRAM comparisons see whole lines.
func (a *Agent) encode(val uint64) []byte {
	buf := a.pool.Get(int(a.lineBytes))
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint64(buf[:8], val)
	return buf
}

func decodeVal(b []byte) uint64 { return binary.LittleEndian.Uint64(b[:8]) }

// Tick runs one cycle: consume responses and probes, answer due probes,
// advance the scripted op, then arbitrate the outbound queues.
func (a *Agent) Tick(now int64) {
	a.recvD(now)
	a.recvB(now)
	a.answerProbes(now)
	a.advance(now)
	a.drain(now)
}

func (a *Agent) curOpBlk() int {
	if a.opIdx >= len(a.ops) {
		return -1
	}
	return a.ops[a.opIdx].Addr
}

// finishOp retires the current op and arms the next one's dispatch delay.
func (a *Agent) finishOp(now int64) {
	a.opIdx++
	a.phase = phDispatch
	if a.opIdx < len(a.ops) {
		a.startAt = now + a.ops[a.opIdx].Delay
	}
}

func (a *Agent) recvD(now int64) {
	for {
		m, ok := a.port.D.Recv(now)
		if !ok {
			return
		}
		bi := a.blockIndex(m.Addr)
		blk := &a.blocks[bi]
		switch m.Op {
		case tilelink.OpGrantData, tilelink.OpGrantDataDirty:
			if !blk.grantPending {
				a.sb.OnUnexpectedGrant(now, a.id, m.Addr, m.Op)
				a.pool.Put(m.Data)
				continue
			}
			val := decodeVal(m.Data)
			a.sb.OnGrant(now, a.id, m.Addr, m.Cap, tilelink.GrantCap(blk.grantGrow), val)
			blk.perm = m.Cap.Perm()
			blk.val = val
			blk.dirty = false
			blk.grantPending = false
			a.pool.Put(m.Data)
			a.ctr.grants.Inc()
			trace.EmitTxn(a.tr, now, a.name, "grant", m.Txn, m.Addr, m.Cap.String())
			a.outE = append(a.outE, outMsg{
				msg:     tilelink.Msg{Op: tilelink.OpGrantAck, Addr: m.Addr, Source: a.id, Txn: m.Txn},
				readyAt: now + a.rng.Int63n(3),
				blk:     bi,
			})
			if a.phase == phAwaitGrant && a.curOpBlk() == bi {
				if a.pendingWrite {
					a.doWrite(now, bi, a.writeVal)
					a.pendingWrite = false
				}
				a.finishOp(now)
			}
		case tilelink.OpReleaseAck:
			blk.relPending, blk.relSent = false, false
			trace.EmitTxn(a.tr, now, a.name, "releaseack", m.Txn, m.Addr, "")
			if a.phase == phAwaitRelAck && a.curOpBlk() == bi {
				a.finishOp(now)
			}
		case tilelink.OpRootReleaseAck:
			blk.flushPending, blk.flushSent = false, false
			a.pool.Put(blk.flushBuf)
			blk.flushBuf = nil
			trace.EmitTxn(a.tr, now, a.name, "rootreleaseack", m.Txn, m.Addr, "")
			// §5.5: the ack promises the line is durable in DRAM now.
			if a.durable != nil {
				a.durable.Defer(a.sb, now, a.id, blk.addr)
			} else {
				a.sb.CheckDurable(now, a.id, blk.addr, a.memPeek(blk.addr))
			}
			if a.phase == phAwaitFlushAck && a.curOpBlk() == bi {
				a.finishOp(now)
			}
		default:
			panic(fmt.Sprintf("tlctest: agent %d: unexpected D-channel message %v", a.id, m))
		}
	}
}

func (a *Agent) recvB(now int64) {
	for {
		m, ok := a.port.B.Recv(now)
		if !ok {
			return
		}
		if m.Op != tilelink.OpProbe {
			panic(fmt.Sprintf("tlctest: agent %d: unexpected B-channel message %v", a.id, m))
		}
		a.probes = append(a.probes, deferredProbe{
			blk:     a.blockIndex(m.Addr),
			cap:     m.Cap,
			txn:     m.Txn,
			readyAt: now + a.rng.Int63n(3),
		})
	}
}

// answerProbes responds to every due probe. A probe for a block whose
// voluntary Release or RootRelease is issued but not yet on the wire is held
// back (§5.4.1 flush_rdy / wb_rdy): the L2's inline release application
// depends on the release preceding the probe response on C, and FIFO only
// guarantees that once both are sent. The ProbeDuringFlushHold mutation
// reverts the RootRelease half of the rule.
func (a *Agent) answerProbes(now int64) {
	kept := a.probes[:0]
	for _, p := range a.probes {
		blk := &a.blocks[p.blk]
		if p.readyAt > now || (blk.relPending && !blk.relSent) ||
			(blk.flushPending && !blk.flushSent && !a.bug.ProbeDuringFlushHold) {
			kept = append(kept, p)
			continue
		}
		op, sh, to, carry := tilelink.ProbeResp(blk.perm, blk.dirty, p.cap)
		m := tilelink.Msg{Op: op, Addr: blk.addr, Source: a.id, Shrink: sh, Txn: p.txn}
		if carry {
			m.Data = a.encode(blk.val)
		}
		a.sb.OnSurrender(now, a.id, blk.addr, to, carry, blk.val)
		blk.perm = to
		if carry {
			blk.dirty = false
		}
		a.outCProbe = append(a.outCProbe, outMsg{msg: m, readyAt: now, blk: p.blk})
		a.ctr.probes.Inc()
		trace.EmitTxn(a.tr, now, a.name, "probeack", p.txn, blk.addr, op.String())
	}
	a.probes = kept
}

func (a *Agent) advance(now int64) {
	if a.phase == phDispatch {
		a.dispatch(now)
	}
	if a.phase == phHold && now >= a.holdUntil {
		a.outCReq = append(a.outCReq, outMsg{msg: a.holdMsg, readyAt: now, rootrel: true, blk: a.holdBlk})
		a.phase = phAwaitFlushAck
	}
}

func (a *Agent) dispatch(now int64) {
	if a.opIdx >= len(a.ops) || now < a.startAt {
		return
	}
	op := a.ops[a.opIdx]
	bi := op.Addr
	blk := &a.blocks[bi]

	// One outstanding transaction per block: wait for in-flight grants,
	// flushes and (unless the bug mutation is armed) voluntary releases.
	acquiring := op.Kind == OpAcquireB || op.Kind == OpAcquireT || op.Kind == OpWrite
	if blk.grantPending || blk.flushPending {
		return
	}
	if blk.relPending && !(acquiring && a.bug.AcquireWhileReleasePending) {
		return
	}

	switch op.Kind {
	case OpIdle:
		a.finishOp(now)
	case OpAcquireB, OpAcquireT:
		target := tilelink.PermBranch
		if op.Kind == OpAcquireT {
			target = tilelink.PermTrunk
		}
		grow, ok := tilelink.GrowFor(blk.perm, target)
		if !ok { // already holds the target or better
			a.finishOp(now)
			return
		}
		a.issueAcquire(now, bi, grow)
	case OpWrite:
		if blk.perm == tilelink.PermTrunk {
			a.doWrite(now, bi, op.Val)
			a.finishOp(now)
			return
		}
		grow, _ := tilelink.GrowFor(blk.perm, tilelink.PermTrunk)
		a.pendingWrite, a.writeVal = true, op.Val
		a.issueAcquire(now, bi, grow)
	case OpReleaseB, OpReleaseN:
		target := tilelink.PermNone
		if op.Kind == OpReleaseB {
			target = tilelink.PermBranch
		}
		rop, sh, ok := tilelink.ReleaseFor(blk.perm, target, blk.dirty)
		if !ok { // nothing to release from here
			a.finishOp(now)
			return
		}
		m := tilelink.Msg{Op: rop, Addr: blk.addr, Source: a.id, Shrink: sh, Txn: a.txns.Next()}
		carried := rop == tilelink.OpReleaseData
		if carried {
			m.Data = a.encode(blk.val)
		}
		a.sb.OnSurrender(now, a.id, blk.addr, target, carried, blk.val)
		blk.perm = target
		if carried {
			blk.dirty = false
		}
		blk.relPending, blk.relSent = true, false
		a.outCReq = append(a.outCReq, outMsg{msg: m, readyAt: now, release: true, blk: bi})
		a.ctr.releases.Inc()
		trace.EmitTxn(a.tr, now, a.name, "release", m.Txn, blk.addr, rop.String())
		if a.bug.AcquireWhileReleasePending {
			// Buggy discipline: the release is fire-and-forget; the next op
			// (an Acquire, with the relPending gate also skipped) may race it.
			a.finishOp(now)
			return
		}
		a.phase = phAwaitRelAck
	case OpFlush, OpClean:
		a.issueRootRelease(now, bi, op)
	default:
		panic(fmt.Sprintf("tlctest: agent %d: unknown op kind %q", a.id, op.Kind))
	}
}

func (a *Agent) doWrite(now int64, bi int, val uint64) {
	blk := &a.blocks[bi]
	blk.val = val
	blk.dirty = true
	a.sb.OnWrite(now, a.id, blk.addr, val)
	a.ctr.writes.Inc()
}

func (a *Agent) issueAcquire(now int64, bi int, grow tilelink.Grow) {
	blk := &a.blocks[bi]
	txn := a.txns.Next()
	blk.grantPending, blk.grantGrow = true, grow
	a.outA = append(a.outA, outMsg{
		msg:     tilelink.Msg{Op: tilelink.OpAcquireBlock, Addr: blk.addr, Source: a.id, Grow: grow, Txn: txn},
		readyAt: now,
		blk:     bi,
	})
	a.ctr.acquires.Inc()
	trace.EmitTxn(a.tr, now, a.name, "acquire", txn, blk.addr, grow.String())
	a.phase = phAwaitGrant
}

// issueRootRelease performs the local half of a flush/clean immediately —
// a flush invalidates the local copy, either kind captures dirty data into
// flushBuf — then holds the RootRelease message for HoldC cycles before
// queueing it, mirroring the window in which a hardware FSHR has committed
// locally but not yet won C-channel arbitration. Probes landing in that
// window are deferred until the RootRelease is on the wire (flush_rdy low,
// §5.4.1) unless the ProbeDuringFlushHold mutation is armed.
func (a *Agent) issueRootRelease(now int64, bi int, op Op) {
	blk := &a.blocks[bi]
	blk.flushPending, blk.flushSent = true, false
	m := tilelink.Msg{Addr: blk.addr, Source: a.id, Txn: a.txns.Next()}
	if op.Kind == OpFlush {
		m.Op = tilelink.OpRootReleaseFlush
		if blk.perm != tilelink.PermNone {
			carried := blk.dirty
			if carried {
				m.Op = tilelink.OpRootReleaseFlushData
				m.Dirty = true
				m.Data = a.encode(blk.val)
				blk.flushBuf = m.Data
			}
			a.sb.OnSurrender(now, a.id, blk.addr, tilelink.PermNone, carried, blk.val)
			blk.perm = tilelink.PermNone
			blk.dirty = false
		}
	} else { // OpClean: permission is kept, dirty data is surrendered
		m.Op = tilelink.OpRootReleaseClean
		if blk.perm == tilelink.PermTrunk && blk.dirty {
			m.Op = tilelink.OpRootReleaseCleanData
			m.Dirty = true
			m.Data = a.encode(blk.val)
			blk.flushBuf = m.Data
			a.sb.OnSurrender(now, a.id, blk.addr, blk.perm, true, blk.val)
			blk.dirty = false
		}
	}
	a.sb.OnFlushIssue(now, a.id, blk.addr)
	a.holdMsg, a.holdBlk, a.holdUntil = m, bi, now+op.HoldC
	a.phase = phHold
	a.ctr.flushes.Inc()
	trace.EmitTxn(a.tr, now, a.name, "rootrelease", m.Txn, blk.addr, m.Op.String())
}

// sendHead tries to put q's head on the wire. It reports whether the head
// was ready this cycle — claiming the channel's arbiter slot whether or not
// the link accepted it (busy links and chaos refusals retry next cycle).
func (a *Agent) sendHead(now int64, l *tilelink.Link, q *[]outMsg) bool {
	if len(*q) == 0 || (*q)[0].readyAt > now {
		return false
	}
	e := (*q)[0]
	if !l.Send(now, e.msg) {
		return true
	}
	if e.release {
		a.blocks[e.blk].relSent = true
	}
	if e.rootrel {
		a.blocks[e.blk].flushSent = true
	}
	*q = (*q)[1:]
	return true
}

func (a *Agent) drain(now int64) {
	a.sendHead(now, a.port.A, &a.outA)
	// One C-channel arbiter, probe responses at high priority: a ready
	// probe response owns the slot; voluntary traffic goes only when no
	// probe response is ready.
	if !a.sendHead(now, a.port.C, &a.outCProbe) {
		a.sendHead(now, a.port.C, &a.outCReq)
	}
	a.sendHead(now, a.port.E, &a.outE)
}

// queueNext folds one outbound queue into the next-event clock.
//
//skipit:hotpath
func queueNext(q []outMsg, now int64) int64 {
	if len(q) == 0 {
		return tilelink.NoEvent
	}
	if t := q[0].readyAt; t > now {
		return t
	}
	return now + 1
}

// NextEvent follows the conservative fast-forward contract: the returned
// cycle is at or before the agent's next self-driven action. Await phases
// are woken by inbound messages, which the port's own NextEvent covers.
//
//skipit:hotpath
func (a *Agent) NextEvent(now int64) int64 {
	next := tilelink.NoEvent
	if t := queueNext(a.outA, now); t < next {
		next = t
	}
	if t := queueNext(a.outCProbe, now); t < next {
		next = t
	}
	if t := queueNext(a.outCReq, now); t < next {
		next = t
	}
	if t := queueNext(a.outE, now); t < next {
		next = t
	}
	for i := range a.probes {
		t := a.probes[i].readyAt
		if t <= now {
			t = now + 1
		}
		if t < next {
			next = t
		}
	}
	if a.opIdx < len(a.ops) {
		switch a.phase {
		case phDispatch:
			t := a.startAt
			if t <= now {
				t = now + 1 // dispatch gates clear via inbound traffic; stay conservative
			}
			if t < next {
				next = t
			}
		case phHold:
			t := a.holdUntil
			if t <= now {
				t = now + 1
			}
			if t < next {
				next = t
			}
		}
	}
	return next
}

// Done reports that the agent has exhausted its script and has nothing in
// flight. It keeps answering probes regardless.
func (a *Agent) Done() bool {
	if a.opIdx < len(a.ops) {
		return false
	}
	if len(a.outA)+len(a.outCProbe)+len(a.outCReq)+len(a.outE)+len(a.probes) > 0 {
		return false
	}
	for i := range a.blocks {
		b := &a.blocks[i]
		if b.grantPending || b.relPending || b.flushPending {
			return false
		}
	}
	return true
}
