package sweepd

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skipit/internal/sim"
	"skipit/internal/sweep"
)

// WorkerConfig configures one fleet worker.
type WorkerConfig struct {
	// Name identifies the worker to the coordinator ("w1", "host:3").
	Name string
	// Client speaks the job API (wrap its transport in a FaultTransport to
	// inject faults).
	Client *Client
	// Source resolves leased specs to runnable jobs. Required.
	Source JobSource
	// PollEvery bounds the idle poll interval when the coordinator declines
	// to suggest one. Default 500ms.
	PollEvery time.Duration
	// JobTimeout is the per-job wall-clock cap; past it the worker reports
	// FailTimeout and abandons the run (the simulator's own cycle-domain
	// watchdog — armed inside the job — is the first line of defense; this
	// is the backstop for host-side wedges). 0 disables.
	JobTimeout time.Duration
	// ExitWhenDrained stops Run once the coordinator reports the queue
	// drained (ephemeral CI workers); otherwise the worker keeps polling.
	ExitWhenDrained bool
	// Logf receives operational log lines. Default discards.
	Logf func(format string, args ...any)
}

// Worker leases jobs, executes them with heartbeats, and reports structured
// completions. A panic or sim hang inside a job becomes a typed Failure —
// the worker itself never dies of a bad job.
type Worker struct {
	cfg  WorkerConfig
	stop chan struct{}
	once sync.Once
}

// NewWorker builds a worker.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 500 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Worker{cfg: cfg, stop: make(chan struct{})}
}

// Stop makes Run return after the current job completes.
func (w *Worker) Stop() { w.once.Do(func() { close(w.stop) }) }

// Run is the worker's main loop: register, lease, execute, complete. It
// returns when Stop is called or, with ExitWhenDrained, when the queue
// drains. Transport errors back off and retry — a worker outlives
// coordinator restarts and partitions.
func (w *Worker) Run() error {
	hb := w.register()
	transportErrs := 0
	for {
		select {
		case <-w.stop:
			return nil
		default:
		}
		lease, err := w.cfg.Client.Lease(LeaseRequest{Worker: w.cfg.Name})
		if err != nil {
			transportErrs++
			w.sleep(backoffPoll(w.cfg.PollEvery, transportErrs))
			continue
		}
		transportErrs = 0
		if lease.Job == nil {
			if lease.Drained && w.cfg.ExitWhenDrained {
				w.cfg.Logf("sweepd: worker %s: queue drained, exiting", w.cfg.Name)
				return nil
			}
			wait := w.cfg.PollEvery
			if lease.WaitMillis > 0 {
				if s := time.Duration(lease.WaitMillis) * time.Millisecond; s < wait {
					wait = s
				}
			}
			w.sleep(wait)
			continue
		}
		w.execute(*lease.Job, lease.LeaseID, hb)
	}
}

// register loops until the coordinator accepts the worker (or Stop).
func (w *Worker) register() (heartbeatEvery time.Duration) {
	heartbeatEvery = w.cfg.PollEvery
	for {
		resp, err := w.cfg.Client.Register(RegisterRequest{Worker: w.cfg.Name})
		if err == nil {
			if resp.HeartbeatMillis > 0 {
				heartbeatEvery = time.Duration(resp.HeartbeatMillis) * time.Millisecond
			}
			return heartbeatEvery
		}
		w.cfg.Logf("sweepd: worker %s: register: %v", w.cfg.Name, err)
		select {
		case <-w.stop:
			return heartbeatEvery
		case <-time.After(w.cfg.PollEvery):
		}
	}
}

// execute runs one leased job under heartbeats and reports its completion.
func (w *Worker) execute(spec JobSpec, leaseID uint64, heartbeatEvery time.Duration) {
	job, ok := w.cfg.Source.Resolve(spec.Group, spec.Name)
	var rec *sweep.Record
	var fail *Failure
	switch {
	case !ok:
		fail = &Failure{Code: FailUnknownJob,
			Message: fmt.Sprintf("worker %s has no job %s in its table", w.cfg.Name, spec.ID())}
	case job.Fingerprint != spec.Fingerprint:
		fail = &Failure{Code: FailFingerprint,
			Message: fmt.Sprintf("worker %s resolves %s to fingerprint %s, coordinator wants %s (build drift)",
				w.cfg.Name, spec.ID(), job.Fingerprint, spec.Fingerprint)}
	default:
		rec, fail = w.runWithHeartbeats(job, leaseID, heartbeatEvery)
		if rec == nil && fail == nil {
			return // run abandoned (lease cancelled); nothing to report
		}
	}
	if fail != nil {
		w.cfg.Logf("sweepd: worker %s: job %s failed: %s", w.cfg.Name, spec.ID(), fail.Error())
	}
	// Push the completion with a few retries: a dropped complete otherwise
	// costs a whole lease TTL. A stale response is fine — the work is done.
	req := CompleteRequest{Worker: w.cfg.Name, LeaseID: leaseID, Record: rec, Failure: fail}
	for i := 0; i < 5; i++ {
		if _, err := w.cfg.Client.Complete(req); err == nil {
			return
		}
		w.sleep(backoffPoll(w.cfg.PollEvery/4, i+1))
	}
	w.cfg.Logf("sweepd: worker %s: could not deliver completion for %s (lease will expire)",
		w.cfg.Name, spec.ID())
}

// runWithHeartbeats executes the job on its own goroutine while the worker
// goroutine heartbeats, carrying live progress from the sweep.Runner's
// Progress hook. Cancellation (lease lost) and JobTimeout abandon the run:
// the goroutine is left to finish and its late completion is handled by the
// coordinator's stale-complete path.
func (w *Worker) runWithHeartbeats(job sweep.Job, leaseID uint64, heartbeatEvery time.Duration) (*sweep.Record, *Failure) {
	var progress atomic.Value
	progress.Store("running")
	type outcome struct {
		res sweep.JobResult
	}
	resCh := make(chan outcome, 1)
	go func() {
		runner := sweep.Runner{
			Workers: 1,
			Progress: func(ev sweep.ProgressEvent) {
				progress.Store(fmt.Sprintf("%s:%s", ev.State, ev.Name))
			},
		}
		results := runner.Run([]sweep.Job{job})
		resCh <- outcome{res: results[0]}
	}()

	var timeout <-chan time.Time
	if w.cfg.JobTimeout > 0 {
		t := time.NewTimer(w.cfg.JobTimeout)
		defer t.Stop()
		timeout = t.C
	}
	hb := time.NewTicker(heartbeatEvery)
	defer hb.Stop()
	for {
		select {
		case out := <-resCh:
			return toWire(out.res)
		case <-timeout:
			return nil, &Failure{Code: FailTimeout,
				Message: fmt.Sprintf("job %s/%s exceeded the worker's %s wall timeout", job.Group, job.Name, w.cfg.JobTimeout)}
		case <-hb.C:
			p, _ := progress.Load().(string)
			resp, err := w.cfg.Client.Heartbeat(HeartbeatRequest{
				Worker: w.cfg.Name, LeaseID: leaseID, Progress: p})
			if err == nil && resp.Cancel {
				w.cfg.Logf("sweepd: worker %s: lease %d cancelled mid-run, abandoning", w.cfg.Name, leaseID)
				return nil, nil // nothing to report; the lease moved on
			}
		}
	}
}

// toWire converts an in-process job result into the wire (record, failure)
// pair, classifying errors: a sim watchdog HangError carries its structured
// report; a recovered panic is labeled as such; everything else is a plain
// run error.
func toWire(res sweep.JobResult) (*sweep.Record, *Failure) {
	if res.Err == nil {
		r := res.Record
		return &r, nil
	}
	var hang *sim.HangError
	if errors.As(res.Err, &hang) {
		return nil, &Failure{Code: FailHang, Message: hang.Report.Summary(),
			HangReport: hang.Report.JSON()}
	}
	if strings.Contains(res.Err.Error(), "panicked:") {
		return nil, &Failure{Code: FailPanic, Message: res.Err.Error()}
	}
	return nil, &Failure{Code: FailRunError, Message: res.Err.Error()}
}

// backoffPoll is the worker-side transport-retry delay: linear growth capped
// at 8x, deliberately unsynchronized with the coordinator's job backoff.
func backoffPoll(base time.Duration, errs int) time.Duration {
	if errs > 8 {
		errs = 8
	}
	return base * time.Duration(errs)
}

// sleep waits d or until Stop.
func (w *Worker) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	select {
	case <-w.stop:
	case <-time.After(d):
	}
}
