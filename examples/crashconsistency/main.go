// Crash consistency: a persistent append-only log on NVMM. Each record is
// written, written back with CBO.CLEAN, and then the record count is
// updated, written back, and fenced — so a crash at any moment leaves a
// prefix of the log recoverable. The example crashes the machine mid-append
// and recovers from the persistence domain.
package main

import (
	"fmt"
	"log"

	"skipit"
)

const (
	countAddr = 0x1000 // persistent record count
	logBase   = 0x2000 // records, one 64 B line each
)

func recordAddr(i int) uint64 { return logBase + uint64(i)*64 }

// appendRecords builds the program that appends records [from, to): write
// record, clean it, fence, then bump the durable count, clean, fence. The
// count update is ordered after the record's persistence, so the count never
// names an unpersisted record.
func appendRecords(from, to int) *skipit.Program {
	b := skipit.NewProgram()
	for i := from; i < to; i++ {
		b.Store(recordAddr(i), uint64(1000+i))
		b.CboClean(recordAddr(i))
		b.Fence()
		b.Store(countAddr, uint64(i+1))
		b.CboClean(countAddr)
		b.Fence()
	}
	return b.Build()
}

func main() {
	sys := skipit.NewSystem(1)

	// Run the appender but pull the plug after a fixed number of cycles —
	// long enough for some records, not all.
	sys.Cores[0].SetProgram(appendRecords(0, 20))
	const crashCycle = 1400
	for sys.Now() < crashCycle && !sys.Cores[0].Done() {
		sys.Step()
	}
	fmt.Printf("power failure at cycle %d (appender mid-flight)\n", sys.Now())
	sys.Crash(false)

	// Recovery: the durable count tells us how many records are valid;
	// every one of them must be intact.
	count := int(skipit.NVMMValue(sys, countAddr))
	fmt.Printf("recovered record count: %d\n", count)
	for i := 0; i < count; i++ {
		got := skipit.NVMMValue(sys, recordAddr(i))
		if got != uint64(1000+i) {
			log.Fatalf("CORRUPT: record %d = %d, want %d", i, got, 1000+i)
		}
	}
	fmt.Printf("all %d counted records intact; records beyond the count are garbage by design\n", count)

	// The machine reboots and keeps appending from the recovered count.
	if _, err := sys.Run([]*skipit.Program{appendRecords(count, 20)}, 10_000_000); err != nil {
		log.Fatal(err)
	}
	sys.Crash(false) // even another crash cannot hurt now
	final := int(skipit.NVMMValue(sys, countAddr))
	fmt.Printf("after recovery run + second crash: count = %d (want 20)\n", final)
	for i := 0; i < final; i++ {
		if skipit.NVMMValue(sys, recordAddr(i)) != uint64(1000+i) {
			log.Fatalf("CORRUPT record %d after recovery", i)
		}
	}
	fmt.Println("log fully recovered: crash consistency holds end to end")
}
