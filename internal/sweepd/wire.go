// Package sweepd is the simulation-as-a-service layer: it promotes
// internal/sweep from an in-process worker pool to a coordinator + worker
// fleet with first-class failure handling.
//
// The wire unit is the fingerprinted job (JobSpec): sweep.Job carries a Run
// closure that cannot cross a process boundary, so the coordinator ships only
// the job's identity — (group, name) plus the content-address fingerprint —
// and every worker rebuilds the closure from its own compiled-in job table (a
// JobSource). The fingerprint is the safety interlock: a worker whose build
// would measure something different for the same (group, name) produces a
// different fingerprint and refuses the job, instead of silently committing a
// wrong number.
//
// Failure handling is explicit state, not accident:
//
//   - Jobs are leased to workers with a wall-clock deadline; heartbeats renew
//     the lease and carry live progress from the sweep.Runner.Progress hook.
//   - A missed heartbeat, a returned error, a panic, or a sim watchdog
//     HangReport requeues the job with a bounded retry budget and exponential
//     backoff whose jitter is deterministic (detrand.Mix over job id and
//     attempt), so tests replay byte-identically.
//   - Every state transition lands in a write-ahead journal; a coordinator
//     crash recovers the queue by replaying it.
//   - Results commit idempotently into the content-addressed sweep.Store
//     (atomic temp-file + rename): measurements are deterministic, so a
//     duplicate completion from a resurrected worker carries the same bytes
//     and is harmless.
//   - Degradation is policy: when the live worker pool is below the
//     configured floor, the coordinator sheds the lowest-priority pending
//     jobs with a typed overload failure instead of queuing unboundedly; when
//     the coordinator is unreachable, the Fleet client downgrades to the
//     in-process sweep.Runner with a logged fallback.
//
// The whole layer is exercised by a fault-injection harness (FaultTransport:
// seed-scheduled drop/duplicate/delay/partition, mirroring internal/chaos)
// with an end-to-end test proving every submitted job lands exactly one
// committed result or one typed terminal error under killed workers and a
// restarted coordinator.
package sweepd

import (
	"encoding/json"
	"fmt"

	"skipit/internal/sweep"
)

// JobState is a job's position in the coordinator's state machine.
type JobState string

const (
	// StatePending: queued (possibly backing off between attempts).
	StatePending JobState = "pending"
	// StateLeased: held by a worker under a live lease.
	StateLeased JobState = "leased"
	// StateDone: exactly one result is committed in the store. Terminal.
	StateDone JobState = "done"
	// StateFailed: retry budget exhausted or shed; Failure says why. Terminal.
	StateFailed JobState = "failed"
)

// JobSpec is the wire unit: one fingerprinted measurement, by identity only.
type JobSpec struct {
	Group  string `json:"group"`
	Name   string `json:"name"`
	Series string `json:"series,omitempty"`
	X      string `json:"x,omitempty"`
	// Fingerprint content-addresses the measurement; a worker must resolve
	// the same fingerprint locally or refuse the job.
	Fingerprint string `json:"fingerprint"`
	// Priority orders shedding under overload: lower values are shed first.
	// Jobs of equal priority are shed newest-first.
	Priority int `json:"priority,omitempty"`
}

// ID is the job's queue-wide identity, matching the sweep gate's keying.
func (j JobSpec) ID() string { return j.Group + "/" + j.Name }

// SpecFor derives the wire spec of an in-process job.
func SpecFor(j sweep.Job, priority int) JobSpec {
	return JobSpec{Group: j.Group, Name: j.Name, Series: j.Series, X: j.X,
		Fingerprint: j.Fingerprint, Priority: priority}
}

// Failure codes. Every terminal failure a client sees carries one of these.
const (
	// FailRunError: the job's Run returned an ordinary error.
	FailRunError = "run-error"
	// FailPanic: the job panicked; Message carries the recovered value.
	FailPanic = "panic"
	// FailHang: the sim watchdog tripped mid-job; HangReport carries the
	// structured diagnosis (decode with sim.ParseHangReport).
	FailHang = "hang"
	// FailTimeout: the worker's per-job wall timeout elapsed.
	FailTimeout = "timeout"
	// FailUnknownJob: the worker's job table has no (group, name) entry.
	FailUnknownJob = "unknown-job"
	// FailFingerprint: the worker resolved (group, name) to a different
	// fingerprint — its build would measure something else.
	FailFingerprint = "fingerprint-mismatch"
	// FailOverloaded: shed by degradation policy (worker pool below floor
	// with the queue above its ceiling). Terminal without consuming retries.
	FailOverloaded = "overloaded"
	// FailLeaseExpired: recorded on requeue when a lease died silently
	// (missed heartbeats, killed worker). Never terminal by itself.
	FailLeaseExpired = "lease-expired"
)

// Failure is a structured job failure crossing the wire.
type Failure struct {
	Code    string `json:"code"`
	Message string `json:"message,omitempty"`
	// HangReport holds the sim.HangReport JSON when Code is FailHang.
	HangReport json.RawMessage `json:"hang_report,omitempty"`
}

func (f *Failure) Error() string {
	if f.Message == "" {
		return f.Code
	}
	return f.Code + ": " + f.Message
}

// JobError is the typed terminal error the Fleet client surfaces for a job
// that exhausted its retries or was shed. Detect with errors.As; inspect
// Failure.Code for the class (FailOverloaded, FailHang, ...).
type JobError struct {
	Job      JobSpec
	Attempts int
	Failure  Failure
}

func (e *JobError) Error() string {
	return fmt.Sprintf("sweepd: job %s failed after %d attempt(s): %s", e.Job.ID(), e.Attempts, e.Failure.Error())
}

// JobStatus is one job's externally visible state.
type JobStatus struct {
	Job     JobSpec  `json:"job"`
	State   JobState `json:"state"`
	Attempt int      `json:"attempt"`
	Worker  string   `json:"worker,omitempty"`
	// Progress is the latest heartbeat-carried state string while leased.
	Progress string        `json:"progress,omitempty"`
	Record   *sweep.Record `json:"record,omitempty"`
	Failure  *Failure      `json:"failure,omitempty"`
	// Cached reports that Record came from a coordinator store hit and no
	// worker ran the job.
	Cached bool `json:"cached,omitempty"`
}

// --- request/response bodies of the HTTP job API ---

// SubmitRequest enqueues jobs. Submission is idempotent by job ID: a job
// already known (in any state) is left untouched.
type SubmitRequest struct {
	Jobs []JobSpec `json:"jobs"`
}

type SubmitResponse struct {
	// Accepted counts newly enqueued jobs (store hits count: they enqueue
	// and complete immediately).
	Accepted int `json:"accepted"`
	// Known counts jobs that were already in the queue.
	Known int `json:"known"`
	// Shed lists job IDs rejected or evicted by overload policy during this
	// submit; each is terminal-failed with FailOverloaded.
	Shed []string `json:"shed,omitempty"`
}

// RegisterRequest announces a worker. Registration is idempotent and also
// serves as a liveness signal.
type RegisterRequest struct {
	Worker string `json:"worker"`
}

type RegisterResponse struct {
	// LeaseMillis is the lease TTL; a worker must heartbeat well within it.
	LeaseMillis int64 `json:"lease_millis"`
	// HeartbeatMillis is the coordinator's suggested heartbeat interval.
	HeartbeatMillis int64 `json:"heartbeat_millis"`
}

// LeaseRequest asks for one job.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

type LeaseResponse struct {
	// Job is nil when nothing is runnable right now.
	Job     *JobSpec `json:"job,omitempty"`
	LeaseID uint64   `json:"lease_id,omitempty"`
	Attempt int      `json:"attempt,omitempty"`
	// WaitMillis suggests a poll delay when Job is nil.
	WaitMillis int64 `json:"wait_millis,omitempty"`
	// Drained: every submitted job is terminal; an ephemeral worker may exit.
	Drained bool `json:"drained,omitempty"`
}

// HeartbeatRequest renews a lease and reports live progress.
type HeartbeatRequest struct {
	Worker  string `json:"worker"`
	LeaseID uint64 `json:"lease_id"`
	// Progress is a short human-readable state ("running", "rep 3/5"), fed
	// from the sweep.Runner.Progress hook.
	Progress string `json:"progress,omitempty"`
}

type HeartbeatResponse struct {
	// Cancel: the lease is no longer current (expired and reclaimed, or the
	// job completed elsewhere); the worker should abandon the run.
	Cancel bool `json:"cancel,omitempty"`
}

// CompleteRequest finishes a lease with exactly one of Record or Failure.
type CompleteRequest struct {
	Worker  string        `json:"worker"`
	LeaseID uint64        `json:"lease_id"`
	Record  *sweep.Record `json:"record,omitempty"`
	Failure *Failure      `json:"failure,omitempty"`
}

type CompleteResponse struct {
	// Accepted: the result (or failure) was applied to the job.
	Accepted bool `json:"accepted"`
	// Stale: the lease was no longer current. A stale Record whose
	// fingerprint still matches the job is committed anyway (idempotent,
	// content-addressed); a stale Failure is discarded.
	Stale bool `json:"stale,omitempty"`
}

// ResultsRequest polls job states. Empty IDs means every known job.
type ResultsRequest struct {
	IDs []string `json:"ids,omitempty"`
}

type ResultsResponse struct {
	Jobs []JobStatus `json:"jobs"`
	// Done: every requested job is terminal.
	Done bool `json:"done"`
}

// StateResponse is the human-facing dump served at /api/sweepd/state.
type StateResponse struct {
	Jobs        []JobStatus `json:"jobs"`
	LiveWorkers int         `json:"live_workers"`
	Pending     int         `json:"pending"`
	Leased      int         `json:"leased"`
	Done        int         `json:"done"`
	Failed      int         `json:"failed"`
}
