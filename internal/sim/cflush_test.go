package sim

import (
	"testing"

	"skipit/internal/isa"
	"skipit/internal/trace"
)

// TestCflushDL1EvictsToL2Only documents the §2.6 limitation of SiFive's
// vendor instruction: dirty data reaches the L2 but NOT main memory, so it
// cannot provide the persistence guarantee CBO.X exists for.
func TestCflushDL1EvictsToL2Only(t *testing.T) {
	p := isa.NewBuilder().
		Store(0x1000, 88).
		CflushDL1(0x1000).
		Fence().
		Build()
	s := run1(t, p)
	// The line left L1...
	if s.L1s[0].LineState(0x1000).Valid {
		t.Fatal("CFLUSH.D.L1 left the line in L1")
	}
	// ...its dirty data is now in the L2...
	st := s.L2.LineState(0x1000)
	if !st.Present || !st.Dirty {
		t.Fatalf("L2 state after CFLUSH.D.L1: %+v, want present+dirty", st)
	}
	if line, ok := s.L2.PeekLine(0x1000); !ok || line[0] != 88 {
		t.Fatal("L2 does not hold the evicted data")
	}
	// ...and main memory never saw it: a crash loses the store.
	if got := s.Mem.PeekUint64(0x1000); got != 0 {
		t.Fatalf("NVMM = %d after CFLUSH.D.L1 (it must not persist)", got)
	}
}

func TestCflushDL1MissIsCheap(t *testing.T) {
	b := isa.NewBuilder()
	idx := b.Mark()
	b.CflushDL1(0x9000) // line never touched
	s := run1(t, b.Build())
	tm := s.Cores[0].Timing(idx)
	if lat := tm.CompletedAt - tm.IssuedAt; lat > 20 {
		t.Fatalf("CFLUSH.D.L1 miss took %d cycles, want trivial", lat)
	}
	if s.L1s[0].Stats().Writebacks != 0 {
		t.Fatal("miss triggered a writeback")
	}
}

func TestCflushDL1CleanLineStillReleases(t *testing.T) {
	// A clean (read-only) line is still evicted; the release keeps the
	// L2 directory exact.
	p := isa.NewBuilder().
		Load(0x1000).
		CflushDL1(0x1000).
		Fence().
		Load(0x1000). // refetch: L2 hit, not a stale L1 hit
		Build()
	s := run1(t, p)
	if s.L2.Stats().VoluntaryReleases == 0 {
		t.Fatal("clean eviction sent no Release")
	}
	if got := s.Cores[0].Timing(3).LoadValue; got != 0 {
		t.Fatalf("refetched load = %d, want 0", got)
	}
}

func TestCflushDL1ThenCboFlushPersists(t *testing.T) {
	// The §2.6 remedy: after CFLUSH.D.L1 moved data to L2, a CBO.FLUSH
	// (which operates on the whole coherent hierarchy) still persists it
	// because the L2 handles the RootRelease for a line the L1 no longer
	// holds.
	p := isa.NewBuilder().
		Store(0x1000, 77).
		CflushDL1(0x1000).
		CboFlush(0x1000).
		Fence().
		Build()
	s := run1(t, p)
	if got := s.Mem.PeekUint64(0x1000); got != 77 {
		t.Fatalf("NVMM = %d after CFLUSH.D.L1 + CBO.FLUSH + fence, want 77", got)
	}
}

func TestCflushDL1RegionLatencyVsCboFlush(t *testing.T) {
	// CFLUSH.D.L1 is cheaper per line than a full CBO.FLUSH (no DRAM
	// round trip on the fence), the flip side of its weaker guarantee.
	measure := func(useCbo bool) int64 {
		b := isa.NewBuilder().StoreRegion(0, 2048, 64, 1).Fence()
		start := b.Mark()
		for a := uint64(0); a < 2048; a += 64 {
			if useCbo {
				b.CboFlush(a)
			} else {
				b.CflushDL1(a)
			}
		}
		end := b.Mark()
		b.Fence()
		s := run1(t, b.Build())
		return s.Cores[0].Timing(end).CompletedAt - s.Cores[0].Timing(start).IssuedAt
	}
	vendor := measure(false)
	cbo := measure(true)
	if vendor >= cbo {
		t.Fatalf("CFLUSH.D.L1 sweep (%d cy) not cheaper than CBO.FLUSH (%d cy)", vendor, cbo)
	}
}

// TestSkipItDropDoesNotInvalidate codifies a consequence of the §6.1 drop
// rule that the paper does not discuss: a CBO.FLUSH that hits a clean line
// with the skip bit set is dropped entirely — the line is NOT invalidated.
// That is sound for persistence but means flush-based cache-partitioning
// defenses (§8) must run with Skip It disabled. See examples/timingchannel.
func TestSkipItDropDoesNotInvalidate(t *testing.T) {
	p := isa.NewBuilder().
		Load(0x1000). // clean line, skip=1 via GrantData
		Fence().
		CboFlush(0x1000). // dropped by the skip bit
		Fence().
		Build()
	s := run1(t, p)
	if s.L1s[0].FlushUnit().Stats().SkipDropped != 1 {
		t.Fatal("flush not dropped; premise broken")
	}
	if !s.L1s[0].LineState(0x1000).Valid {
		t.Fatal("dropped flush invalidated the line (behavior changed; update docs)")
	}

	// With Skip It off the same flush must invalidate.
	cfg := DefaultConfig(1)
	cfg.L1.Flush.SkipIt = false
	s2 := New(cfg)
	if _, err := s2.Run([]*isa.Program{p}, runLimit); err != nil {
		t.Fatal(err)
	}
	if s2.L1s[0].LineState(0x1000).Valid {
		t.Fatal("flush without Skip It left the line valid")
	}
}

// TestTracingCapturesFlushLifecycle drives a flush through the system with a
// ring tracer attached and checks the line's event trail.
func TestTracingCapturesFlushLifecycle(t *testing.T) {
	s := New(DefaultConfig(1))
	ring := trace.NewRing(256)
	s.SetTracer(ring)
	p := isa.NewBuilder().
		Store(0x1000, 1).
		CboFlush(0x1000).
		Fence().
		Build()
	if _, err := s.Run([]*isa.Program{p}, runLimit); err != nil {
		t.Fatal(err)
	}
	events := ring.ForAddr(0x1000)
	kinds := map[string]bool{}
	for _, e := range events {
		kinds[e.Kind] = true
	}
	for _, want := range []string{"store-miss", "grant", "cbo-enqueue", "fshr-alloc", "root-release", "fshr-ack"} {
		if !kinds[want] {
			t.Errorf("missing %q in line trail: %v", want, events)
		}
	}
}
