// Command skipit-vet runs the skipit static-analysis suite
// (internal/analysis): determinism, hotalloc, poolown, nextevent and
// metricname.
//
// It supports two modes:
//
//   - vettool mode: when invoked by the go command
//     (go vet -vettool=$(which skipit-vet) ./...) it speaks the unitchecker
//     protocol — the go command passes a *.cfg file per package and a
//     -V=full version probe, and handles package loading, caching and fact
//     serialization itself.
//
//   - standalone mode: `skipit-vet [-json] [-tests] [-cache dir] [packages]`
//     loads and type-checks packages in-process (internal/analysis/driver)
//     and prints findings, one per line, or as a JSON array for machine
//     consumers such as cmd/ghannotate. With -cache, per-package results
//     (findings plus exported facts) are stored content-addressed under dir
//     and replayed on later runs for packages whose sources, dependencies,
//     toolchain and analyzer binary are unchanged. Exit status: 0 clean,
//     1 findings, 2 failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"
	"skipit/internal/analysis/driver"
	"skipit/internal/analysis/skipvet"
)

// jsonDiag is the machine-readable finding shape consumed by cmd/ghannotate.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	// The go command drives vettools through the unitchecker protocol: a
	// -V=full version probe and a -flags capability probe, then one
	// invocation per package with a *.cfg argument.
	for _, arg := range os.Args[1:] {
		if strings.HasSuffix(arg, ".cfg") || strings.HasPrefix(arg, "-V") || arg == "-flags" {
			unitchecker.Main(skipvet.Analyzers...) // never returns
		}
	}

	asJSON := flag.Bool("json", false, "emit findings as a JSON array")
	tests := flag.Bool("tests", true, "also analyze _test.go compilation units")
	cacheDir := flag.String("cache", "", "fact-store cache directory: packages whose content hash matches replay cached findings and facts instead of re-running analyzers")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: skipit-vet [-json] [-tests=false] [-cache dir] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range skipvet.Analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	l := &driver.Loader{Tests: *tests}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipit-vet: %v\n", err)
		os.Exit(2)
	}
	var cache *driver.Cache
	if *cacheDir != "" {
		cache = &driver.Cache{Dir: *cacheDir}
	}
	diags, err := driver.RunCached(pkgs, l.Fset, skipvet.Analyzers, cache)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipit-vet: %v\n", err)
		os.Exit(2)
	}

	if *asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     d.Posn.Filename,
				Line:     d.Posn.Line,
				Col:      d.Posn.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "skipit-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", d.Posn, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
