package sim

import (
	"reflect"
	"testing"

	"skipit/internal/isa"
)

// ffWorkload is a two-core workload with enough idle windows (DRAM misses,
// flush round-trips, a long nop stretch) for the fast-forward clock to bite.
func ffWorkload() []*isa.Program {
	p0 := isa.NewBuilder().
		Store(0x1000, 7).Store(0x2000, 8).CboClean(0x1000).
		Nops(200).
		Load(0x3000).Store(0x3000, 9).CboFlush(0x3000).
		Load(0x1000).Fence().Build()
	p1 := isa.NewBuilder().
		Load(0x101000).Nops(150).Store(0x101000, 4).
		CboClean(0x101000).Load(0x102000).Fence().Build()
	return []*isa.Program{p0, p1}
}

// runWorkload runs the fixed workload on a fresh system with the given clock
// mode and returns the system and its finish cycle.
func runWorkload(t *testing.T, fastForward bool, sampleEvery int64) (*System, int64) {
	t.Helper()
	s := New(DefaultConfig(2))
	s.SetFastForward(fastForward)
	if sampleEvery > 0 {
		s.EnableSampling(sampleEvery)
	}
	cycle, err := s.Run(ffWorkload(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return s, cycle
}

// TestFastForwardEquivalence: every observable — finish cycle, final clock,
// every counter, every sampled series point — must be identical with the
// next-event clock on and off. Only sim.skipped_cycles (the clock's own
// odometer) may differ.
func TestFastForwardEquivalence(t *testing.T) {
	sFF, cycFF := runWorkload(t, true, 100)
	sSlow, cycSlow := runWorkload(t, false, 100)

	if cycFF != cycSlow {
		t.Fatalf("finish cycle differs: ff=%d slow=%d", cycFF, cycSlow)
	}
	if sFF.Now() != sSlow.Now() {
		t.Fatalf("clock differs: ff=%d slow=%d", sFF.Now(), sSlow.Now())
	}
	if sSlow.SkippedCycles() != 0 {
		t.Fatalf("slow clock skipped %d cycles", sSlow.SkippedCycles())
	}
	if sFF.SkippedCycles() == 0 {
		t.Fatal("fast-forward clock skipped nothing on an idle-heavy workload")
	}

	snapFF, snapSlow := sFF.Snapshot(), sSlow.Snapshot()
	delete(snapFF.Counters, "sim.skipped_cycles")
	delete(snapSlow.Counters, "sim.skipped_cycles")
	if !reflect.DeepEqual(snapFF.Counters, snapSlow.Counters) {
		for k, v := range snapFF.Counters {
			if w := snapSlow.Counters[k]; v != w {
				t.Errorf("counter %s: ff=%d slow=%d", k, v, w)
			}
		}
		t.Fatal("counters diverged")
	}
	// Per-core timings (cycle-stamped per instruction) must match exactly.
	for i := range sFF.Cores {
		if !reflect.DeepEqual(sFF.Cores[i].Timings(), sSlow.Cores[i].Timings()) {
			t.Fatalf("core %d timings diverged", i)
		}
	}
	// The sampler must have fired at the same boundaries with the same
	// values, except for the skipped-cycles odometer's own series.
	ser := func(s *System) map[string][]uint64 {
		out := map[string][]uint64{}
		for _, sr := range s.Snapshot().Series {
			if sr.Key == "sim.skipped_cycles" {
				continue
			}
			out[sr.Key] = sr.Values
		}
		return out
	}
	if !reflect.DeepEqual(ser(sFF), ser(sSlow)) {
		t.Fatal("sampled series diverged")
	}
}

// TestFastForwardClamps unit-tests each clamp in FastForward directly.
func TestFastForwardClamps(t *testing.T) {
	t.Run("fully idle no clamps", func(t *testing.T) {
		s := New(DefaultConfig(1))
		s.Step() // establish now=1 with components ticked at 0
		if skipped := s.FastForward(); skipped != 0 {
			t.Fatalf("idle system with no clamp skipped %d cycles", skipped)
		}
		if s.Now() != 1 {
			t.Fatalf("clock moved to %d", s.Now())
		}
	})
	t.Run("caller limit", func(t *testing.T) {
		s := New(DefaultConfig(1))
		s.Step()
		if skipped := s.FastForward(500); skipped != 499 {
			t.Fatalf("skipped %d cycles, want 499", skipped)
		}
		if s.Now() != 500 {
			t.Fatalf("clock at %d, want 500", s.Now())
		}
	})
	t.Run("sampler boundary", func(t *testing.T) {
		s := New(DefaultConfig(1))
		s.EnableSampling(64)
		s.Step()
		s.FastForward(1000)
		if s.Now() != 64 {
			t.Fatalf("clock at %d, want sampler boundary 64", s.Now())
		}
	})
	t.Run("watchdog trip cycle", func(t *testing.T) {
		s := New(DefaultConfig(1))
		s.ArmWatchdog(100) // wdLastChange = 0 → first tripping ticked cycle is 99
		s.Step()
		s.FastForward(10_000)
		if s.Now() != 99 {
			t.Fatalf("clock at %d, want watchdog trip cycle 99", s.Now())
		}
		// Ticking that cycle must trip the watchdog, exactly as if every
		// cycle in between had been stepped.
		err := s.StepGuarded()
		if err == nil {
			t.Fatal("watchdog did not trip")
		}
		he, ok := err.(*HangError)
		if !ok {
			t.Fatalf("unexpected error type %T: %v", err, err)
		}
		if he.Report.Cycle != 100 || he.Report.Window != 100 {
			t.Fatalf("trip at cycle %d window %d, want cycle 100 window 100",
				he.Report.Cycle, he.Report.Window)
		}
	})
	t.Run("disabled", func(t *testing.T) {
		s := New(DefaultConfig(1))
		s.SetFastForward(false)
		s.Step()
		if skipped := s.FastForward(500); skipped != 0 {
			t.Fatalf("disabled clock skipped %d cycles", skipped)
		}
	})
}

// TestFastForwardNeverSkipsArmedEvents drives the full matrix of armed
// observation points on a real workload: sampler series, watchdog bookkeeping
// and run results must be identical whether idle windows are stepped or
// skipped, even with the watchdog armed tightly enough to matter.
func TestFastForwardNeverSkipsArmedEvents(t *testing.T) {
	run := func(ff bool) (*System, int64) {
		s := New(DefaultConfig(2))
		s.SetFastForward(ff)
		s.EnableSampling(50)
		s.ArmWatchdog(5_000)
		for i, p := range ffWorkload() {
			s.Cores[i].SetProgram(p)
		}
		allDone := func() bool {
			for _, c := range s.Cores {
				if !c.Done() {
					return false
				}
			}
			return true
		}
		for {
			if allDone() && s.Quiescent() {
				break
			}
			if s.Now() > 1_000_000 {
				t.Fatal("runaway")
			}
			if err := s.StepGuarded(); err != nil {
				t.Fatal(err)
			}
			// Re-check before fast-forwarding: a freshly terminal SoC has no
			// next event, and the sampler clamp would otherwise overshoot the
			// exit cycle.
			if allDone() && s.Quiescent() {
				break
			}
			s.FastForward()
		}
		return s, s.Now()
	}
	sFF, nFF := run(true)
	sSlow, nSlow := run(false)
	if nFF != nSlow {
		t.Fatalf("final cycle differs: ff=%d slow=%d", nFF, nSlow)
	}
	snapFF, snapSlow := sFF.Snapshot(), sSlow.Snapshot()
	delete(snapFF.Counters, "sim.skipped_cycles")
	delete(snapSlow.Counters, "sim.skipped_cycles")
	if !reflect.DeepEqual(snapFF.Counters, snapSlow.Counters) {
		t.Fatal("counters diverged under armed watchdog + sampler")
	}
}
