GO ?= go

.PHONY: all build test race lint fmt bench tlc

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the stock vet suite plus skipit-vet, the project's own
# go/analysis suite: the interprocedural analyzers (detflow, hotalloc,
# shardiso, lockorder) plus determinism, poolown, nextevent, metricname and
# staleignore. The ./... pattern covers internal/analysis and cmd/ too, so
# the analyzers lint themselves. See internal/analysis/README.md for the
# rules and the waiver syntax; pass `-cache DIR` to skipit-vet (as CI does)
# to replay unchanged packages from the fact-store cache.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/skipit-vet ./...

fmt:
	gofmt -w ./cmd ./internal

bench:
	$(GO) test ./internal/bench -run '^$$' -bench . -benchmem -benchtime 50x

# tlc runs the fixed-seed protocol-level agent sweep CI uses (see
# cmd/skipit-tlc; failures shrink to .tlc.json artifacts in /tmp/tlc-repros).
tlc:
	mkdir -p /tmp/tlc-repros
	$(GO) run ./cmd/skipit-tlc -episodes 2000 -seed 1 -out /tmp/tlc-repros
