// Package consumer is the metricname fixture: naming-format violations,
// in-package duplicates, and a cross-package collision with the producer
// package's exported registration fact.
package consumer

import (
	"skipit/internal/analysis/testdata/src/metricname/producer"
	"skipit/internal/metrics"
)

type core struct {
	reads  *metrics.Counter
	depth  *metrics.Gauge
	histos *metrics.Histogram
}

// register exercises every rule.
func register(r *metrics.Registry, suffix string) *core {
	producer.Register(r)

	c := &core{
		reads:  r.Counter("mem", "reads"),
		depth:  r.Gauge("mem", "inflight.depth"), // ok: dots form hierarchies
		histos: r.Histogram("mem", "latency", nil),
	}

	r.Counter("mem", "reads")             // want `metric key "mem.reads" already registered`
	r.Counter("mem", "Reads")             // want `metric name "Reads" is not snake_case`
	r.Counter("Mem", "writes")            // want `metric component "Mem" is not snake_case`
	r.Counter("mem", "reads-"+suffix)     // want `metric name passed to Counter must be a literal string`
	r.Counter("l1[0]", "loads")           // ok: literal instance index
	_ = r.Counter("mem", "reads").Value() // ok: read-through, not a registration

	r.Counter("l2", "acquires") // want `metric key "l2.acquires" also registered by package .*producer`

	//skipit:ignore metricname intentionally shared with producer for the fixture
	r.Gauge("l2", "mshr_occupancy")

	return c
}
