// Package callsum computes per-package function summaries: for every
// function declared in the package, the list of statically resolved calls
// its body (including any function literals it encloses) makes. It is the
// shared substrate of the interprocedural skipit-vet analyzers — detflow,
// shardiso, lockorder and the interprocedural half of hotalloc all walk the
// same summary graph and differ only in what they propagate along it.
//
// The resolution is deliberately conservative and purely static:
//
//   - direct calls (pkg.F(...), recv.M(...)) resolve to the *types.Func;
//   - method calls through a concrete receiver resolve to the concrete
//     method; calls through an interface resolve to the interface method
//     object (which carries no body, so facts attached to concrete
//     implementations are not seen through it);
//   - calls of function values (fields, parameters, closures bound to
//     variables) do not resolve at all.
//
// Analyzers that consume summaries therefore under-approximate the dynamic
// call graph; the rule docs in internal/analysis/README.md state this
// limitation wherever it matters.
package callsum

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var Analyzer = &analysis.Analyzer{
	Name: "callsum",
	Doc: "compute per-function static call summaries for the interprocedural skipit-vet analyzers\n\n" +
		"Produces no diagnostics; detflow, shardiso, lockorder and hotalloc consume its result.",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: reflect.TypeOf((*Summaries)(nil)),
	Run:        run,
}

// Summaries is the per-package result: every declared function with its
// resolved static calls, in source order (the order fixpoint propagation in
// the consumers iterates, which keeps their witness chains deterministic).
type Summaries struct {
	Funcs []*FuncInfo
	ByObj map[*types.Func]*FuncInfo
}

// FuncInfo is one declared function's summary.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Obj  *types.Func
	// Calls lists the statically resolved calls in the body, in source
	// order. Calls made inside function literals declared within the body
	// are attributed to this function (conservative: the literal may run
	// later or elsewhere, but it can only be reached through this scope).
	Calls []Call
	// TestFile reports whether the declaration lives in a _test.go file.
	TestFile bool
}

// Call is one resolved call site.
type Call struct {
	Callee *types.Func
	Pos    token.Pos
}

func run(pass *analysis.Pass) (interface{}, error) {
	sums := &Summaries{ByObj: make(map[*types.Func]*FuncInfo)}
	// Standard-library packages are summarized as empty on purpose: the
	// suite's soundness contract treats std bodies as inert — sources like
	// time.Now are matched by callee name at call sites in module code.
	// The standalone driver never analyzes std at all, but under the go
	// command's unitchecker protocol every dependency of a vetted package,
	// std included, gets a fact pass; without this gate the goroutine
	// launches inside the runtime taint fmt and reflect, and through them
	// every function that formats anything.
	if pass.Module == nil || pass.Module.Path == "" || pass.Module.Path == "std" || pass.Module.Path == "cmd" {
		return sums, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		obj, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
		if !ok {
			return
		}
		fi := &FuncInfo{
			Decl:     decl,
			Obj:      obj,
			TestFile: strings.HasSuffix(pass.Fset.Position(decl.Pos()).Filename, "_test.go"),
		}
		if decl.Body != nil {
			ast.Inspect(decl.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := StaticCallee(pass.TypesInfo, call); callee != nil {
					fi.Calls = append(fi.Calls, Call{Callee: callee, Pos: call.Pos()})
				}
				return true
			})
		}
		sums.Funcs = append(sums.Funcs, fi)
		sums.ByObj[obj] = fi
	})
	return sums, nil
}

// StaticCallee resolves a call expression to the *types.Func it statically
// invokes, or nil for builtins, type conversions, and function-value calls.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn
}

// Name renders a function for witness chains: "pkg.F" or "(pkg.T).M", with
// the module prefix trimmed so chains stay readable in terminal diagnostics.
func Name(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	pkg := shortPkg(fn.Pkg().Path())
	if recv := recvType(fn); recv != "" {
		return fmt.Sprintf("(%s.%s).%s", pkg, recv, fn.Name())
	}
	return pkg + "." + fn.Name()
}

// recvType returns the bare receiver type name of a method, or "".
func recvType(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// shortPkg trims an import path to its last segment.
func shortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// TrimChain elides the middle of an over-long witness chain, keeping the
// first hops and the final source entry.
func TrimChain(chain []string, max int) []string {
	if len(chain) <= max {
		return chain
	}
	out := append([]string{}, chain[:max-2]...)
	return append(out, "...", chain[len(chain)-1])
}

// ShortPos renders a position as "file.go:line" (basename only), for
// embedding source anchors into witness chains.
func ShortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}
