package ds

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"skipit/internal/memsim"
	"skipit/internal/persist"
)

// skipMaxHeight bounds towers; 2^16 expected keys per level-16 node.
const skipMaxHeight = 16

// slRef is the atomically-swapped (successor, marked) pair of one skiplist
// level, mirroring the listState encoding.
type slRef struct {
	next   *slNode
	marked bool
}

type slNode struct {
	key    uint64
	addr   uint64
	height int
	next   []atomic.Pointer[slRef]
}

// levelAddr returns the simulated address of the level-th next pointer.
func (n *slNode) levelAddr(level int) uint64 { return n.addr + 8 + uint64(level)*8 }

// Skiplist is the lock-free skiplist of Herlihy & Shavit (a Fraser-style
// design): deletion marks each level's next pointer top-down, with the
// bottom level as the linearization point, and find() physically unlinks
// marked nodes.
type Skiplist struct {
	Common
	head *slNode
	tail *slNode

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewSkiplist builds an empty skiplist.
func NewSkiplist(env *persist.Env, alloc *memsim.Allocator) *Skiplist {
	s := &Skiplist{Common: NewCommon(env, alloc), rng: rand.New(rand.NewSource(42))}
	s.tail = s.newNode(^uint64(0), skipMaxHeight)
	s.head = s.newNode(0, skipMaxHeight)
	for l := 0; l < skipMaxHeight; l++ {
		s.head.next[l].Store(&slRef{next: s.tail})
	}
	return s
}

// Name identifies the structure in benchmark output.
func (s *Skiplist) Name() string { return NameSkiplist }

func (s *Skiplist) newNode(key uint64, height int) *slNode {
	n := &slNode{
		key:    key,
		height: height,
		addr:   s.allocNode(1 + uint64(height)),
		next:   make([]atomic.Pointer[slRef], height),
	}
	for l := range n.next {
		n.next[l].Store(&slRef{})
	}
	return n
}

func (s *Skiplist) randomHeight() int {
	s.rngMu.Lock()
	v := s.rng.Uint64()
	s.rngMu.Unlock()
	h := 1
	for v&1 == 1 && h < skipMaxHeight {
		h++
		v >>= 1
	}
	return h
}

// find locates key, filling preds/succs per level and physically unlinking
// marked nodes it encounters. It reports whether an unmarked bottom-level
// node with the key was found.
func (s *Skiplist) find(tid int, key uint64, preds, succs []*slNode) bool {
retry:
	for {
		pred := s.head
		for level := skipMaxHeight - 1; level >= 0; level-- {
			l := level
			s.env.ReadTraverse(tid, pred.levelAddr(l))
			curr := pred.next[l].Load().next
			for {
				s.env.ReadTraverse(tid, curr.levelAddr(l))
				currRef := curr.next[l].Load()
				for currRef.marked {
					// Help unlink at this level.
					predRef := pred.next[l].Load()
					if predRef.marked || predRef.next != curr {
						continue retry
					}
					if !pred.next[l].CompareAndSwap(predRef, &slRef{next: currRef.next}) {
						continue retry
					}
					s.env.WriteCommit(tid, pred.levelAddr(l))
					curr = currRef.next
					s.env.ReadTraverse(tid, curr.levelAddr(l))
					currRef = curr.next[l].Load()
				}
				if curr.key < key {
					pred = curr
					curr = currRef.next
					continue
				}
				break
			}
			preds[level] = pred
			succs[level] = curr
		}
		return succs[0].key == key
	}
}

// Insert adds key; it reports false if already present.
func (s *Skiplist) Insert(tid int, key uint64) bool {
	checkKey(key)
	preds := make([]*slNode, skipMaxHeight)
	succs := make([]*slNode, skipMaxHeight)
	for {
		if s.find(tid, key, preds, succs) {
			s.env.ReadCritical(tid, succs[0].addr)
			s.env.EndOp(tid, false)
			return false
		}
		height := s.randomHeight()
		node := s.newNode(key, height)
		for l := 0; l < height; l++ {
			node.next[l].Store(&slRef{next: succs[l]})
			s.env.Write(tid, node.levelAddr(l))
		}
		s.env.Write(tid, node.addr)
		s.env.FlushNew(tid, node.addr)

		// Linearize by linking the bottom level.
		predRef := preds[0].next[0].Load()
		if predRef.marked || predRef.next != succs[0] {
			continue
		}
		if !preds[0].next[0].CompareAndSwap(predRef, &slRef{next: node}) {
			continue
		}
		s.env.WriteCommit(tid, preds[0].levelAddr(0))

		// Link the upper levels best-effort; the tower above level 0 is
		// an index, not part of the abstract set.
		for l := 1; l < height; l++ {
			for {
				ref := node.next[l].Load()
				if ref.marked {
					break // concurrent delete; stop building
				}
				predRef := preds[l].next[l].Load()
				if !predRef.marked && predRef.next == succs[l] && ref.next == succs[l] {
					if preds[l].next[l].CompareAndSwap(predRef, &slRef{next: node}) {
						s.env.WriteCommit(tid, preds[l].levelAddr(l))
						break
					}
				}
				if !s.find(tid, key, preds, succs) {
					// Node got deleted concurrently.
					s.env.EndOp(tid, true)
					return true
				}
				if succs[l] != node {
					ref2 := node.next[l].Load()
					if ref2.marked {
						break
					}
					if !node.next[l].CompareAndSwap(ref2, &slRef{next: succs[l]}) {
						continue
					}
					s.env.Write(tid, node.levelAddr(l))
				}
			}
		}
		s.env.EndOp(tid, true)
		return true
	}
}

// Delete removes key; it reports false if absent.
func (s *Skiplist) Delete(tid int, key uint64) bool {
	checkKey(key)
	preds := make([]*slNode, skipMaxHeight)
	succs := make([]*slNode, skipMaxHeight)
	if !s.find(tid, key, preds, succs) {
		s.env.EndOp(tid, false)
		return false
	}
	victim := succs[0]
	s.env.ReadCritical(tid, victim.addr)

	// Mark the index levels top-down.
	for l := victim.height - 1; l >= 1; l-- {
		for {
			ref := victim.next[l].Load()
			if ref.marked {
				break
			}
			if victim.next[l].CompareAndSwap(ref, &slRef{next: ref.next, marked: true}) {
				s.env.Write(tid, victim.levelAddr(l))
				break
			}
		}
	}
	// The bottom-level mark is the linearization point.
	for {
		ref := victim.next[0].Load()
		if ref.marked {
			s.env.EndOp(tid, false)
			return false // someone else deleted it
		}
		if victim.next[0].CompareAndSwap(ref, &slRef{next: ref.next, marked: true}) {
			s.env.WriteCommit(tid, victim.levelAddr(0))
			// Physically unlink via find.
			s.find(tid, key, preds, succs)
			s.env.EndOp(tid, true)
			return true
		}
	}
}

// Contains reports membership wait-free (no helping).
func (s *Skiplist) Contains(tid int, key uint64) bool {
	checkKey(key)
	pred := s.head
	var curr *slNode
	for level := skipMaxHeight - 1; level >= 0; level-- {
		s.env.ReadTraverse(tid, pred.levelAddr(level))
		curr = pred.next[level].Load().next
		for {
			s.env.ReadTraverse(tid, curr.levelAddr(level))
			ref := curr.next[level].Load()
			if ref.marked {
				curr = ref.next
				continue
			}
			if curr.key < key {
				pred = curr
				curr = ref.next
				continue
			}
			break
		}
	}
	s.env.ReadCritical(tid, curr.addr)
	found := curr.key == key && !curr.next[0].Load().marked
	s.env.EndOp(tid, false)
	return found
}
